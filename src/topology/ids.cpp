#include "topology/ids.hpp"

#include <numeric>

namespace ssmwn::topology {

IdAssignment random_ids(std::size_t node_count, util::Rng& rng) {
  const auto perm = util::random_permutation(node_count, rng);
  IdAssignment ids(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    ids[i] = static_cast<ProtocolId>(perm[i]);
  }
  return ids;
}

IdAssignment sequential_ids(std::size_t node_count) {
  IdAssignment ids(node_count);
  std::iota(ids.begin(), ids.end(), ProtocolId{0});
  return ids;
}

IdAssignment reversed_ids(std::size_t node_count) {
  IdAssignment ids(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    ids[i] = static_cast<ProtocolId>(node_count - 1 - i);
  }
  return ids;
}

}  // namespace ssmwn::topology
