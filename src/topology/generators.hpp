// Node placement generators.
//
// The paper deploys nodes two ways: a homogeneous Poisson point process of
// intensity λ in the 1×1 square ("random geometry"), and a regular grid.
// Both are reproduced here, plus a fixed-count uniform scatter that is
// convenient for tests and mobility scenarios (where the node count must
// stay constant across runs).
#pragma once

#include <cstddef>
#include <vector>

#include "topology/point.hpp"
#include "util/rng.hpp"

namespace ssmwn::topology {

/// Homogeneous Poisson point process with intensity `lambda` in the unit
/// square: the node count is Poisson(λ), positions i.i.d. uniform.
[[nodiscard]] std::vector<Point> poisson_points(double lambda, util::Rng& rng);

/// Exactly `count` i.i.d. uniform positions in the unit square (the
/// "binomial point process" — a PPP conditioned on its count).
[[nodiscard]] std::vector<Point> uniform_points(std::size_t count,
                                                util::Rng& rng);

/// `side` × `side` grid filling the unit square, margin of half a cell on
/// every border. With side=32 (the closest square to the paper's λ=1000)
/// and R=0.05 every interior node has exactly 8 neighbors, which realizes
/// the "all interior densities equal" pathology of Section 5.
[[nodiscard]] std::vector<Point> grid_points(std::size_t side);

/// Grid side length whose node count best approximates `target_count`.
[[nodiscard]] std::size_t grid_side_for(std::size_t target_count) noexcept;

}  // namespace ssmwn::topology
