// Incremental unit-disk topology: edge deltas instead of graph rebuilds.
//
// The paper's headline property is re-convergence after topology
// *change*; this module makes change itself a first-class, cheap
// operation. `IncrementalUdg` is a persistent spatial index over the
// node positions that, given the positions after a mobility tick, emits
// the exact `graph::EdgeDelta` between the previous and the new
// unit-disk graph — the edge set is provably identical to what a fresh
// `unit_disk_graph` rebuild over the new positions would produce
// (asserted tick-for-tick by tests/topology/incremental_delta_test.cpp).
//
// The index is a Verlet/skin candidate list, the standard structure of
// molecular-dynamics neighbor maintenance: every unordered pair whose
// distance at *anchor* time was at most `radius * (1 + skin)` is a
// candidate, stored exactly once (in the row of whichever endpoint the
// half-stencil cell sweep discovered it from) with an `adjacent` flag
// (distance ≤ radius right now). As long as no node
// has strayed more than `radius * skin / 2` from its anchor, the
// candidate set still covers every pair that can possibly be within
// `radius`, so one flat, allocation-free scan of the candidate rows —
// compare squared distance against radius², emit a delta entry on every
// flag flip — is a complete update. When some node exceeds the safety
// margin the candidates are rebuilt from a fresh uniform cell grid
// (cells of side `radius * (1 + skin)`, counting-sorted, 3×3 scan — the
// same bucketing `unit_disk_graph` uses) and the delta comes from a
// merge-diff of the old and new flagged rows. Rapid rebuilds grow the
// skin geometrically (bounded), trading per-tick scan width for rebuild
// frequency, so vehicular speeds degrade gracefully instead of
// thrashing. Everything is a pure function of the position history —
// no randomness, no pointers — so deltas are deterministic and
// identical on every platform and thread count.
//
// `LiveTopology` layers node churn on top: it maintains the geometric
// graph and, when an alive mask is in play, the *effective* graph
// (edges with both endpoints up), composing the geometric delta with
// mask transitions into a single per-tick delta over the effective
// graph — the delta stream the live engines consume.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/dynamic.hpp"
#include "graph/graph.hpp"
#include "topology/point.hpp"

namespace ssmwn::topology {

class IncrementalUdg {
 public:
  struct Config {
    /// Candidate horizon = radius * (1 + skin_fraction).
    double skin_fraction = 0.5;
    /// Adaptive growth cap (see class comment).
    double max_skin_fraction = 2.0;
  };

  /// Indexes the initial positions. `radius` must be positive.
  IncrementalUdg(std::span<const Point> points, double radius, Config config);
  IncrementalUdg(std::span<const Point> points, double radius)
      : IncrementalUdg(points, radius, Config{}) {}

  /// The unit-disk graph of the current positions, materialized.
  [[nodiscard]] graph::Graph current_graph() const;

  /// Moves every node to `new_points` (same node count) and returns the
  /// exact edge delta between the previous and the new unit-disk graph,
  /// sorted and disjoint. The reference is valid until the next call.
  const graph::EdgeDelta& update(std::span<const Point> new_points);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return positions_.size();
  }
  [[nodiscard]] double radius() const noexcept { return radius_; }
  /// Candidate rebuilds performed so far (observability; the bench
  /// reports it next to throughput).
  [[nodiscard]] std::uint64_t rebuilds() const noexcept { return rebuilds_; }
  [[nodiscard]] double skin_fraction() const noexcept {
    return config_.skin_fraction;
  }

 private:
  struct Candidate {
    graph::NodeId other = 0;
    std::uint8_t adjacent = 0;
  };

  /// Rebuilds the candidate rows from `positions_` (new anchors). Flags
  /// are recomputed from current distances.
  void build_candidates(std::vector<std::size_t>& offsets,
                        std::vector<Candidate>& rows);
  void scan_update();
  void rebuild_update();

  double radius_ = 0.0;
  double r2_ = 0.0;
  Config config_;
  double safety2_ = 0.0;  // (radius * skin / 2)², the scan-validity bound
  std::vector<Point> positions_;  // current
  std::vector<Point> anchors_;    // positions at last candidate build
  std::vector<std::size_t> cand_offsets_;  // n + 1; row p holds pairs (p, q>p)
  std::vector<Candidate> cand_;
  graph::EdgeDelta delta_;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t updates_since_rebuild_ = 0;
  // Rebuild scratch, reused.
  std::vector<std::size_t> old_offsets_;
  std::vector<Candidate> old_cand_;
  std::vector<std::uint32_t> cell_start_;
  std::vector<graph::NodeId> by_cell_;
  std::vector<Point> sorted_pos_;           // positions in cell order
  std::vector<std::size_t> slack_offsets_;  // over-allocated row starts
  std::vector<std::size_t> row_size_;       // actual row sizes, by node
  std::vector<Candidate> fill_;             // over-allocated fill buffer
  std::vector<std::uint64_t> stamp_;        // rebuild diff marks, per node
  std::uint64_t stamp_base_ = 0;
};

/// The composed live topology the engines observe: geometry (mobility)
/// plus an optional alive mask (churn). `graph()` is stable in memory
/// across updates, so `sim::Network` / `sim::AsyncNetwork` can hold the
/// reference for the whole run.
class LiveTopology {
 public:
  /// `alive` enables masked mode (it must then always be passed to
  /// `update` too); empty means pure mobility.
  LiveTopology(std::span<const Point> points, double radius,
               std::span<const char> alive,
               IncrementalUdg::Config config);
  LiveTopology(std::span<const Point> points, double radius,
               std::span<const char> alive = {})
      : LiveTopology(points, radius, alive, IncrementalUdg::Config{}) {}

  /// The current effective graph (masked when churn is in play).
  [[nodiscard]] const graph::Graph& graph() const noexcept {
    return masked_ ? effective_.view() : geometric_.view();
  }

  /// Applies one tick: new positions and, in masked mode, the new alive
  /// mask. Returns the delta just applied to `graph()`.
  const graph::EdgeDelta& update(std::span<const Point> new_points,
                                 std::span<const char> alive = {});

  /// Nodes whose effective adjacency changed in the last update.
  [[nodiscard]] std::span<const graph::NodeId> dirty_nodes() const noexcept {
    return masked_ ? effective_.dirty_nodes() : geometric_.dirty_nodes();
  }

  [[nodiscard]] const IncrementalUdg& index() const noexcept { return udg_; }

 private:
  IncrementalUdg udg_;
  graph::DynamicGraph geometric_;
  bool masked_ = false;
  std::vector<char> alive_;
  graph::DynamicGraph effective_;
  graph::EdgeDelta effective_delta_;
};

}  // namespace ssmwn::topology
