// Non-homogeneous deployments: Matérn cluster process.
//
// The paper's simulations use homogeneous Poisson deployments and a
// grid; real ad-hoc networks are often *clumped* (crowds, convoys,
// buildings). The Matérn cluster process — Poisson parent points, each
// spawning a Poisson number of children uniformly in a disc — is the
// standard model for such hotspots, and is the stress case for a
// *density*-based election: hotspot centers have both high degree and
// high link density, so the metric should place heads at hotspot cores.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/point.hpp"
#include "util/rng.hpp"

namespace ssmwn::topology {

struct MaternConfig {
  double parent_intensity = 20.0;  ///< λ of the hotspot centers
  double mean_children = 50.0;     ///< mean points per hotspot
  double radius = 0.08;            ///< hotspot disc radius
  bool include_parents = false;    ///< also emit the centers as nodes
};

/// Samples a Matérn cluster process in the unit square. Children falling
/// outside the square are reflected back in (keeps the intensity roughly
/// uniform near borders).
[[nodiscard]] std::vector<Point> matern_cluster_points(
    const MaternConfig& config, util::Rng& rng);

}  // namespace ssmwn::topology
