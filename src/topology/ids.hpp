// Protocol identifier assignment.
//
// The graph layer indexes nodes 0..n-1, but the clustering algorithm
// breaks ties on the nodes' *unique protocol identifiers*, and Section 5
// of the paper shows the algorithm's worst case is driven entirely by how
// those identifiers are distributed in space. This module supplies the
// two distributions the paper evaluates (uniformly random, and the
// adversarial "increasing from left to right and bottom to top" grid
// order) plus helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssmwn::topology {

/// Protocol identifier (the paper's node Id). Distinct from the dense
/// graph index; ties in the ≺ order compare these.
using ProtocolId = std::uint64_t;

/// id_of[node index] -> protocol identifier; always a permutation of
/// 0..n-1 so uniqueness is guaranteed by construction.
using IdAssignment = std::vector<ProtocolId>;

/// Uniformly random permutation — the paper's "homogeneously and randomly
/// distributed" identifier case, where the DAG brings little benefit.
[[nodiscard]] IdAssignment random_ids(std::size_t node_count, util::Rng& rng);

/// Identity permutation. On a row-major grid this is exactly the paper's
/// adversarial case: identifiers increase left to right, bottom to top, so
/// every interior density tie resolves toward one corner and the whole
/// network collapses into a single cluster (Fig. 2).
[[nodiscard]] IdAssignment sequential_ids(std::size_t node_count);

/// Reversed identity — the mirror adversary; useful for property tests
/// (the cluster structure must mirror, not change shape).
[[nodiscard]] IdAssignment reversed_ids(std::size_t node_count);

}  // namespace ssmwn::topology
