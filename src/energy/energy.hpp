// Energy-aware organization — the paper's closing future-work item
// ("Finally, we also want to consider energy constraints in the
// stabilization algorithm and we are investigating energy-efficient
// organization algorithms").
//
// Model: every node starts with a battery of `capacity` joule-units.
// Each maintenance window costs `member_cost` (listening + one hello
// broadcast); cluster-heads additionally pay `head_premium` (cluster
// beaconing, inter-cluster relaying). A node whose battery reaches zero
// is dead and drops out of the radio graph.
//
// Election: the energy-aware metric multiplies the paper's density by
// the node's residual-energy fraction, so depleted nodes hand the head
// role over before dying (head rotation emerges from re-election instead
// of being scheduled). Because this is just another metric fed to
// `cluster_by_metric`, the self-stabilization construction — and the
// whole DAG/incumbency/fusion machinery — applies unchanged, exactly as
// the paper's conclusion anticipates for alternative metrics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "topology/ids.hpp"

namespace ssmwn::energy {

struct EnergyConfig {
  double capacity = 1000.0;     ///< initial battery per node
  double member_cost = 1.0;     ///< per-window cost of being a member
  double head_premium = 4.0;    ///< extra per-window cost of heading
};

/// Tracks per-node batteries across maintenance windows.
class EnergyStore {
 public:
  EnergyStore(std::size_t node_count, EnergyConfig config);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return residual_.size();
  }
  [[nodiscard]] double residual(graph::NodeId p) const noexcept {
    return residual_[p];
  }
  /// Residual energy as a fraction of capacity, in [0, 1].
  [[nodiscard]] double fraction(graph::NodeId p) const noexcept;
  [[nodiscard]] bool alive(graph::NodeId p) const noexcept {
    return residual_[p] > 0.0;
  }
  [[nodiscard]] std::size_t alive_count() const noexcept;
  /// alive() flags as a char vector (for masking helpers).
  [[nodiscard]] std::vector<char> alive_mask() const;

  /// Charges one maintenance window: every alive node pays member_cost,
  /// every alive head additionally pays head_premium. Batteries floor at
  /// zero.
  void charge_window(std::span<const char> is_head);

  /// Direct withdrawal (e.g. data traffic); floors at zero.
  void consume(graph::NodeId p, double amount);

 private:
  EnergyConfig config_;
  std::vector<double> residual_;
};

/// The energy-aware election metric: density × residual-fraction. Dead
/// nodes get metric 0 (they also have no links, but the explicit zero
/// keeps the metric meaningful if a caller forgets to mask the graph).
[[nodiscard]] std::vector<double> energy_weighted_metric(
    const graph::Graph& g, const EnergyStore& store);

/// Convenience: cluster with the energy-aware metric.
[[nodiscard]] core::ClusteringResult cluster_energy_aware(
    const graph::Graph& g, const topology::IdAssignment& uids,
    const EnergyStore& store, const core::ClusterOptions& options = {},
    std::span<const char> previous_heads = {});

/// Copy of `g` with all edges of dead nodes removed (dead nodes stay as
/// isolated indices so node numbering is stable across windows).
[[nodiscard]] graph::Graph mask_dead(const graph::Graph& g,
                                     const EnergyStore& store);

}  // namespace ssmwn::energy
