#include "energy/energy.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/density.hpp"

namespace ssmwn::energy {

EnergyStore::EnergyStore(std::size_t node_count, EnergyConfig config)
    : config_(config), residual_(node_count, config.capacity) {
  if (config.capacity <= 0.0) {
    throw std::invalid_argument("EnergyStore: capacity must be positive");
  }
}

double EnergyStore::fraction(graph::NodeId p) const noexcept {
  return std::max(0.0, residual_[p]) / config_.capacity;
}

std::size_t EnergyStore::alive_count() const noexcept {
  std::size_t count = 0;
  for (double r : residual_) count += r > 0.0;
  return count;
}

std::vector<char> EnergyStore::alive_mask() const {
  std::vector<char> mask(residual_.size(), 0);
  for (std::size_t p = 0; p < residual_.size(); ++p) {
    mask[p] = residual_[p] > 0.0 ? 1 : 0;
  }
  return mask;
}

void EnergyStore::charge_window(std::span<const char> is_head) {
  for (std::size_t p = 0; p < residual_.size(); ++p) {
    if (residual_[p] <= 0.0) continue;
    double cost = config_.member_cost;
    if (p < is_head.size() && is_head[p]) cost += config_.head_premium;
    residual_[p] = std::max(0.0, residual_[p] - cost);
  }
}

void EnergyStore::consume(graph::NodeId p, double amount) {
  residual_[p] = std::max(0.0, residual_[p] - amount);
}

std::vector<double> energy_weighted_metric(const graph::Graph& g,
                                           const EnergyStore& store) {
  auto metric = core::compute_densities(g);
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    metric[p] *= store.alive(p) ? store.fraction(p) : 0.0;
  }
  return metric;
}

core::ClusteringResult cluster_energy_aware(
    const graph::Graph& g, const topology::IdAssignment& uids,
    const EnergyStore& store, const core::ClusterOptions& options,
    std::span<const char> previous_heads) {
  const auto metric = energy_weighted_metric(g, store);
  return core::cluster_by_metric(g, uids, metric, options, {},
                                 previous_heads);
}

graph::Graph mask_dead(const graph::Graph& g, const EnergyStore& store) {
  graph::Graph masked(g.node_count());
  for (graph::NodeId a = 0; a < g.node_count(); ++a) {
    if (!store.alive(a)) continue;
    for (graph::NodeId b : g.neighbors(a)) {
      if (b > a && store.alive(b)) masked.add_edge(a, b);
    }
  }
  masked.finalize();
  return masked;
}

}  // namespace ssmwn::energy
