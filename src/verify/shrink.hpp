// Deterministic scenario shrinking for failing trials.
//
// A certifier that reports "trial 713 of fault class stale-cache failed
// at n=150" leaves the human a haystack. The shrinker turns that tuple
// into the smallest spec it can find that *still fails with the same
// violation*: greedy, deterministic reduction over the trial axes —
// halve then decrement the node count, simplify the daemon to the
// synchronous one, the variant to basic, the medium to lossless — each
// candidate re-run through the full trial and kept only if the identical
// violation class reproduces. No randomness of its own: shrinking the
// same failure twice yields the same minimal spec.
#pragma once

#include <cstddef>

#include "verify/trial.hpp"

namespace ssmwn::verify {

struct ShrinkResult {
  /// Smallest spec found that still fails with the original violation.
  TrialSpec minimal;
  /// The failing result at `minimal` (violation matches the original's).
  TrialResult minimal_result;
  /// True iff the input spec itself reproduced its failure; when false,
  /// `minimal` is just the input and nothing was shrunk.
  bool reproduced = false;
  /// Trials executed while shrinking (includes the reproduction run).
  std::size_t attempts = 0;
  /// Accepted reductions.
  std::size_t shrinks = 0;
};

/// Minimizes `failing`. `budget` bounds the number of candidate trials
/// (shrinking is re-execution-heavy; the default is plenty for the
/// greedy strategy to bottom out). `hooks` are passed through to every
/// candidate run so an injected mutation stays injected while its repro
/// is minimized.
[[nodiscard]] ShrinkResult shrink(const TrialSpec& failing,
                                  const TrialHooks* hooks = nullptr,
                                  std::size_t budget = 200);

}  // namespace ssmwn::verify
