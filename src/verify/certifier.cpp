#include "verify/certifier.hpp"

#include <algorithm>
#include <sstream>

#include "sim/parallel.hpp"
#include "util/rng.hpp"

namespace ssmwn::verify {

TrialSpec trial_spec(const CertifierConfig& config, FaultClass fault,
                     std::size_t index) {
  // Seed stream per (certifier seed, class, trial): splitmix over a
  // fixed mixing of the three, so adding a class or reordering the
  // class list never changes any other class's trials.
  std::uint64_t state = config.seed ^
                        (0x9e3779b97f4a7c15ULL *
                         (static_cast<std::uint64_t>(fault) + 1)) ^
                        (0xbf58476d1ce4e5b9ULL * (index + 1));
  const std::uint64_t seed = util::splitmix64(state);

  TrialSpec spec;
  util::Rng pick(util::splitmix64(state));
  const std::size_t span = config.n_max >= config.n_min
                               ? config.n_max - config.n_min + 1
                               : 1;
  spec.n = config.n_min + pick.index(span);
  spec.radius = config.radius;
  spec.variant = config.variants.empty()
                     ? "basic"
                     : config.variants[pick.index(config.variants.size())];
  spec.fault = fault;
  // Rotate, don't draw: every daemon gets exactly its share of each
  // class, so "passes under all daemons" is a counting fact, not a
  // sampling hope.
  spec.daemon = kAllDaemons[index % kAllDaemons.size()];
  spec.tau = config.tau;
  spec.seed = seed;
  spec.horizon_rounds = config.horizon_rounds;
  spec.confirm_rounds = config.confirm_rounds;
  return spec;
}

CertificationReport certify(const CertifierConfig& config,
                            const TrialHooks* hooks) {
  CertificationReport report;
  const std::size_t classes = config.classes.size();
  const std::size_t per_class = config.trials_per_class;
  const std::size_t total = classes * per_class;

  std::vector<TrialResult> results(total);
  std::vector<TrialSpec> specs(total);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t t = 0; t < per_class; ++t) {
      specs[c * per_class + t] = trial_spec(config, config.classes[c], t);
    }
  }

  // Trials are independent and land in fixed slots, so the shard count
  // cannot change the aggregation below (same discipline as
  // campaign::CampaignRunner).
  const unsigned threads =
      config.threads == 0
          ? std::max(1u, std::thread::hardware_concurrency())
          : config.threads;
  if (threads <= 1 || total <= 1) {
    for (std::size_t i = 0; i < total; ++i) {
      results[i] = run_trial(specs[i], hooks);
    }
  } else {
    sim::ThreadPool pool(threads);
    struct Ctx {
      const std::vector<TrialSpec>* specs;
      TrialResult* results;
      const TrialHooks* hooks;
    } ctx{&specs, results.data(), hooks};
    pool.parallel_for(
        total, 1,
        [](void* raw, std::size_t begin, std::size_t end) {
          auto& ctx = *static_cast<Ctx*>(raw);
          for (std::size_t i = begin; i < end; ++i) {
            ctx.results[i] = run_trial((*ctx.specs)[i], ctx.hooks);
          }
        },
        &ctx);
  }

  report.per_class.resize(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    FaultClassStats& stats = report.per_class[c];
    stats.fault = config.classes[c];
    std::size_t kept = 0;
    for (std::size_t t = 0; t < per_class; ++t) {
      const TrialResult& r = results[c * per_class + t];
      ++stats.trials;
      ++report.trials_total;
      if (r.passed) {
        ++stats.passed;
        stats.sync_steps.add(static_cast<double>(r.sync_steps));
        stats.sync_messages.add(static_cast<double>(r.sync_messages));
        stats.async_time_s.add(r.async_time_s);
        stats.async_messages.add(static_cast<double>(r.async_messages));
      } else {
        ++report.failures_total;
        if (kept < config.max_failures_kept) {
          report.failures.emplace_back(specs[c * per_class + t],
                                       r.violation);
          ++kept;
        }
      }
    }
  }
  return report;
}

campaign::ScenarioConfig scenario_for(const TrialSpec& spec) {
  campaign::ScenarioConfig config;
  config.topology = campaign::TopologyKind::kUniform;
  config.n = spec.n;
  config.radius = spec.radius;
  // Validates the spelling as a side effect; the mapping itself is by
  // name, so an unknown variant fails here rather than mid-campaign.
  (void)cluster_options_for(spec.variant);
  config.variant = spec.variant == "dag" ? campaign::Variant::kDag
                   : spec.variant == "improved"
                       ? campaign::Variant::kImproved
                   : spec.variant == "full" ? campaign::Variant::kFull
                                            : campaign::Variant::kBasic;
  config.tau = spec.tau;
  config.steps = spec.horizon_rounds;
  config.verify_faults = true;
  config.fault_class = spec.fault;
  config.daemon = spec.daemon;
  return config;
}

TrialSpec trial_from_scenario(const campaign::ScenarioConfig& config,
                              std::uint64_t seed) {
  TrialSpec spec;
  spec.n = config.n;
  spec.radius = config.radius;
  spec.variant = std::string(campaign::to_string(config.variant));
  spec.fault = config.fault_class;
  spec.daemon = config.daemon;
  spec.tau = config.tau;
  spec.seed = seed;
  spec.horizon_rounds = config.steps;
  // Fixed, not an axis: the certifier's default confirmation window.
  spec.confirm_rounds = 4;
  return spec;
}

ReproSpec make_repro(const TrialSpec& minimal, Violation expected,
                     const TrialHooks* hooks, std::size_t budget) {
  ReproSpec out;
  const campaign::ScenarioConfig config = scenario_for(minimal);
  const std::string canonical = campaign::canonical_config(config);

  // Campaign seeds are derived, not chosen, so walk seed_base candidates
  // until the derived trial reproduces the violation. A deterministic
  // bug (one that fails for every seed) reproduces on the first try.
  // The candidate is built through trial_from_scenario — the *exact*
  // trial `ssmwn campaign` will execute — not by reseeding `minimal`:
  // the two differ when the certifier ran with a non-default
  // confirm_rounds, and "verified" must mean the campaign replay fails.
  out.seed_base = minimal.seed;
  for (std::size_t attempt = 0; attempt < std::max<std::size_t>(1, budget);
       ++attempt) {
    const std::uint64_t seed_base = minimal.seed + attempt;
    const std::uint64_t derived_seed =
        campaign::run_seed(seed_base, canonical, 0);
    const TrialSpec candidate = trial_from_scenario(config, derived_seed);
    const TrialResult result = run_trial(candidate, hooks);
    if (!result.passed && result.violation == expected) {
      out.seed_base = seed_base;
      out.derived = candidate;
      out.reproduces = true;
      out.violation = result.violation;
      break;
    }
    out.seed_base = seed_base;
    out.derived = candidate;
  }

  std::ostringstream text;
  text << "# self-stabilization repro (" << to_string(minimal.fault)
       << ", " << to_string(expected) << ")\n"
       << "# replay: ssmwn campaign <this-file>\n";
  if (!out.reproduces) {
    text << "# WARNING: not re-verified within the seed_base search "
            "budget\n";
  }
  text << "name = verify-repro\n"
       << "topology = uniform\n"
       << "n = " << minimal.n << "\n"
       << "radius = " << campaign::format_double(minimal.radius) << "\n"
       << "variant = " << minimal.variant << "\n"
       << "tau = " << campaign::format_double(minimal.tau) << "\n"
       << "steps = " << minimal.horizon_rounds << "\n"
       << "replications = 1\n"
       << "seed_base = " << out.seed_base << "\n"
       << "verify_faults = true\n"
       << "fault_class = " << to_string(minimal.fault) << "\n"
       << "daemon = " << to_string(minimal.daemon) << "\n";
  out.text = text.str();
  return out;
}

}  // namespace ssmwn::verify
