// The self-stabilization certifier: many seeded arbitrary-state trials
// per fault class, sharded over a worker pool, summarized per class —
// and, on any violation, shrunk to a small replayable campaign spec.
//
// This is the property-based layer over verify/trial.hpp: trial specs
// are derived deterministically from (seed, class, trial index), every
// daemon is exercised in rotation, and the aggregation order is fixed,
// so a certification run is reproducible end to end — `certified()`
// with the same config means the same 6 × N trials passed, not a
// different lucky sample.
//
// The campaign bridge (trial_from_scenario / make_repro) is the glue
// the ISSUE calls "wire it through the campaign layer": a verify grid
// point maps 1:1 onto a TrialSpec, and a shrunk failure maps back onto
// a one-run campaign spec whose derived run seed reproduces the
// violation — `ssmwn campaign repro.spec` replays the bug.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "util/stats.hpp"
#include "verify/shrink.hpp"
#include "verify/trial.hpp"

namespace ssmwn::verify {

struct CertifierConfig {
  std::vector<FaultClass> classes{kAllFaultClasses.begin(),
                                  kAllFaultClasses.end()};
  std::vector<std::string> variants{"basic"};
  /// Trials per fault class; daemons rotate per trial so each class
  /// covers all three.
  std::size_t trials_per_class = 200;
  /// Node counts are drawn uniformly from [n_min, n_max] per trial.
  std::size_t n_min = 8;
  std::size_t n_max = 64;
  double radius = 0.16;
  double tau = 1.0;
  std::size_t horizon_rounds = 240;
  std::size_t confirm_rounds = 4;
  std::uint64_t seed = 20050612;
  /// Worker parallelism across trials (0 = hardware concurrency).
  /// Results are identical for any value: trials are independent and
  /// aggregated in trial order.
  unsigned threads = 1;
  /// Failing specs kept for shrinking/reporting (per class).
  std::size_t max_failures_kept = 4;
};

struct FaultClassStats {
  FaultClass fault = FaultClass::kRandomAll;
  std::size_t trials = 0;
  std::size_t passed = 0;
  util::RunningStats sync_steps;
  util::RunningStats sync_messages;
  util::RunningStats async_time_s;
  util::RunningStats async_messages;
};

struct CertificationReport {
  std::vector<FaultClassStats> per_class;
  /// Failing specs with their violations, in deterministic trial order,
  /// at most max_failures_kept per class.
  std::vector<std::pair<TrialSpec, Violation>> failures;
  std::size_t trials_total = 0;
  std::size_t failures_total = 0;

  [[nodiscard]] bool certified() const noexcept {
    return failures_total == 0 && trials_total > 0;
  }
};

/// Deterministic spec of trial `index` of `fault` under `config`.
/// Exposed so a failure printed as (class, index) can be re-run alone.
[[nodiscard]] TrialSpec trial_spec(const CertifierConfig& config,
                                   FaultClass fault, std::size_t index);

/// Runs the whole certification. Deterministic for any thread count.
[[nodiscard]] CertificationReport certify(const CertifierConfig& config,
                                          const TrialHooks* hooks = nullptr);

// --- campaign bridge --------------------------------------------------

/// The campaign grid point equivalent to `spec` (verify_faults=true,
/// steps=horizon_rounds, ...). Inverse of `trial_from_scenario` up to
/// the seed, which the campaign derives from (seed_base, canonical).
[[nodiscard]] campaign::ScenarioConfig scenario_for(const TrialSpec& spec);

/// The TrialSpec a campaign verify run executes: the grid point's axes
/// plus the plan-derived run seed. Shared by the campaign runner and
/// the repro emitter so they can never drift apart.
[[nodiscard]] TrialSpec trial_from_scenario(
    const campaign::ScenarioConfig& config, std::uint64_t seed);

/// A shrunk failure packaged for replay through `ssmwn campaign`.
struct ReproSpec {
  /// Campaign spec text (one grid point, one replication).
  std::string text;
  std::uint64_t seed_base = 0;
  /// The trial the campaign will actually execute (seed derived from
  /// seed_base + canonical config, exactly as the runner derives it).
  TrialSpec derived;
  /// True iff `derived` was re-run and failed with `violation`.
  bool reproduces = false;
  Violation violation = Violation::kNone;
};

/// Emits a replayable campaign spec for a (typically shrunk) failing
/// trial. Campaign run seeds are a one-way hash of (seed_base,
/// canonical config), so the emitter *searches*: it tries successive
/// seed_base values, re-runs the derived trial, and keeps the first
/// that fails with `expected` (at most `budget` candidates — one for a
/// deterministic bug, a handful for a seed-sensitive one). `reproduces`
/// is false if the budget ran out; the returned text then still names
/// the last candidate, clearly marked unverified.
[[nodiscard]] ReproSpec make_repro(const TrialSpec& minimal,
                                   Violation expected,
                                   const TrialHooks* hooks = nullptr,
                                   std::size_t budget = 64);

}  // namespace ssmwn::verify
