#include "verify/faults.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ssmwn::verify {

std::string_view to_string(FaultClass fault) noexcept {
  switch (fault) {
    case FaultClass::kRandomAll: return "random-all";
    case FaultClass::kMetricSkew: return "metric-skew";
    case FaultClass::kClusterIdNoise: return "cluster-id-noise";
    case FaultClass::kStaleCache: return "stale-cache";
    case FaultClass::kHierarchyLoops: return "hierarchy-loops";
    case FaultClass::kPartialFrame: return "partial-frame";
  }
  return "?";
}

std::string_view to_string(Daemon daemon) noexcept {
  switch (daemon) {
    case Daemon::kSynchronous: return "synchronous";
    case Daemon::kRandomized: return "randomized";
    case Daemon::kUnfair: return "unfair";
  }
  return "?";
}

FaultClass parse_fault_class(std::string_view text) {
  for (const FaultClass fault : kAllFaultClasses) {
    if (text == to_string(fault)) return fault;
  }
  throw std::invalid_argument(
      "fault_class: expected random-all|metric-skew|cluster-id-noise|"
      "stale-cache|hierarchy-loops|partial-frame, got '" +
      std::string(text) + "'");
}

Daemon parse_daemon(std::string_view text) {
  for (const Daemon daemon : kAllDaemons) {
    if (text == to_string(daemon)) return daemon;
  }
  throw std::invalid_argument(
      "daemon: expected synchronous|randomized|unfair, got '" +
      std::string(text) + "'");
}

namespace {

using core::DensityProtocol;
using core::NeighborDigest;
using graph::NodeId;
using topology::ProtocolId;

/// A metric value in the range real densities occupy (Definition 1 gives
/// d_p in [1, (δ+1)/2]); plausible garbage is harder to flush than
/// obvious garbage because no single rule firing exposes it.
double plausible_metric(util::Rng& rng) { return rng.uniform(0.5, 4.0); }

/// A protocol id that usually names a real node and sometimes a phantom.
ProtocolId noisy_id(const topology::IdAssignment& ids, util::Rng& rng) {
  if (!ids.empty() && rng.chance(0.8)) return ids[rng.index(ids.size())];
  return rng.below(2 * std::max<std::uint64_t>(1, ids.size()));
}

/// Plants one cache entry for the *true* neighbor `q` of `node`,
/// including a digest row per true neighbor-of-neighbor, then lets
/// `mutate_entry` / `mutate_digest` decide how the contents lie.
template <typename EntryFn, typename DigestFn>
void plant_true_neighbors(DensityProtocol& protocol, const graph::Graph& g,
                          const topology::IdAssignment& ids, NodeId node,
                          CorruptionStats& stats, EntryFn&& mutate_entry,
                          DigestFn&& mutate_digest) {
  auto state = protocol.mutable_state(node);
  // Corrupt the maintained e(N_p) alongside the cache it summarizes.
  // Deterministic (an LCG step, no rng draw) so the corruption streams
  // feeding the shared variables stay byte-identical across protocol
  // versions; mutable_state() already marked the count stale, so the
  // node's next R1 firing recomputes it regardless of this value.
  state.links_among =
      state.links_among * 6364136223846793005ULL + 1442695040888963407ULL;
  state.cache.clear();
  for (const NodeId q : g.neighbors(node)) {
    DensityProtocol::CacheEntry& entry = state.cache[ids[q]];
    entry.digests.attach(state.digest_pool);  // hand-planted lists live
                                              // in the node's slab too
    mutate_entry(q, entry);
    entry.digests.clear();
    entry.digests.reserve(g.degree(q));
    for (const NodeId r : g.neighbors(q)) {
      NeighborDigest digest;
      digest.id = ids[r];
      mutate_digest(r, digest);
      entry.digests.push_back(digest);
    }
    std::sort(entry.digests.begin(), entry.digests.end(),
              [](const NeighborDigest& a, const NeighborDigest& b) {
                return a.id < b.id;
              });
    ++stats.cache_entries_planted;
  }
}

void corrupt_metric_skew(DensityProtocol& protocol, const graph::Graph& g,
                         const topology::IdAssignment& ids, util::Rng& rng,
                         CorruptionStats& stats) {
  const std::uint64_t name_space = protocol.name_space();
  for (NodeId p = 0; p < g.node_count(); ++p) {
    auto s = protocol.mutable_state(p);
    s.dag_id = rng.below(2 * name_space);
    s.metric = rng.uniform(0.0, 8.0);
    s.metric_valid = rng.chance(0.9);
    plant_true_neighbors(
        protocol, g, ids, p, stats,
        [&](NodeId q, DensityProtocol::CacheEntry& entry) {
          entry.dag_id = rng.below(2 * name_space);
          entry.metric = rng.uniform(0.0, 8.0);
          entry.metric_valid = rng.chance(0.9);
          entry.head = ids[q];
          entry.head_valid = rng.chance(0.5);
          entry.age = 0;
        },
        [&](NodeId, NeighborDigest& d) {
          d.dag_id = rng.below(2 * name_space);
          d.metric = rng.uniform(0.0, 8.0);
          d.metric_valid = rng.chance(0.9);
          d.is_head = rng.chance(0.2);
          ++stats.digests_mutated;
        });
    ++stats.nodes_touched;
  }
}

void corrupt_cluster_id_noise(DensityProtocol& protocol,
                              const graph::Graph& g,
                              const topology::IdAssignment& ids,
                              util::Rng& rng, CorruptionStats& stats) {
  for (NodeId p = 0; p < g.node_count(); ++p) {
    auto s = protocol.mutable_state(p);
    s.head = noisy_id(ids, rng);
    s.head_valid = rng.chance(0.9);
    s.parent = noisy_id(ids, rng);
    s.parent_valid = rng.chance(0.9);
    // Same deterministic scribble plant_true_neighbors applies: the
    // maintained e(N_p) is adversary-writable state like everything
    // else reachable through mutable_state().
    s.links_among =
        s.links_among * 6364136223846793005ULL + 1442695040888963407ULL;
    ++stats.nodes_touched;
  }
}

void corrupt_stale_cache(DensityProtocol& protocol, const graph::Graph& g,
                         const topology::IdAssignment& ids, util::Rng& rng,
                         CorruptionStats& stats) {
  const std::uint32_t max_age = protocol.config().cache_max_age;
  const std::uint64_t name_space = protocol.name_space();
  for (NodeId p = 0; p < g.node_count(); ++p) {
    auto s = protocol.mutable_state(p);
    // Everyone remembers a world in which it was doing fine — valid
    // flags set, plausible numbers, and (half the time) itself as head.
    s.metric = plausible_metric(rng);
    s.metric_valid = true;
    if (rng.chance(0.5)) {
      s.head = s.uid;
      s.parent = s.uid;
    } else {
      s.head = noisy_id(ids, rng);
      s.parent = noisy_id(ids, rng);
    }
    s.head_valid = true;
    s.parent_valid = true;
    plant_true_neighbors(
        protocol, g, ids, p, stats,
        [&](NodeId, DensityProtocol::CacheEntry& entry) {
          entry.dag_id = rng.below(name_space);
          entry.metric = plausible_metric(rng);
          entry.metric_valid = true;
          entry.head = noisy_id(ids, rng);
          entry.head_valid = true;
          // At the eviction brink: one or two quiet rounds from being
          // aged out, so recovery races cache replacement.
          entry.age = max_age - static_cast<std::uint32_t>(
                                    rng.index(std::min<std::uint32_t>(
                                        3, max_age + 1)));
        },
        [&](NodeId, NeighborDigest& d) {
          d.dag_id = rng.below(name_space);
          d.metric = plausible_metric(rng);
          d.metric_valid = true;
          d.is_head = rng.chance(0.3);
          ++stats.digests_mutated;
        });
    ++stats.nodes_touched;
  }
}

void corrupt_hierarchy_loops(DensityProtocol& protocol, const graph::Graph& g,
                             const topology::IdAssignment& ids,
                             util::Rng& rng, CorruptionStats& stats) {
  // A random functional graph over real ids: parent pointers follow a
  // random neighbor (cycles arise with high probability), heads name a
  // random real node. Caches repeat the same lie so the first heard
  // frames *reinforce* the bogus hierarchy instead of correcting it.
  std::vector<ProtocolId> bogus_head(g.node_count());
  for (NodeId p = 0; p < g.node_count(); ++p) {
    bogus_head[p] = ids[rng.index(g.node_count())];
  }
  for (NodeId p = 0; p < g.node_count(); ++p) {
    auto s = protocol.mutable_state(p);
    const auto neighbors = g.neighbors(p);
    s.parent = neighbors.empty() ? s.uid
                                 : ids[neighbors[rng.index(neighbors.size())]];
    s.parent_valid = true;
    s.head = bogus_head[p];
    s.head_valid = true;
    s.metric = plausible_metric(rng);
    s.metric_valid = true;
    plant_true_neighbors(
        protocol, g, ids, p, stats,
        [&](NodeId q, DensityProtocol::CacheEntry& entry) {
          entry.dag_id = rng.below(protocol.name_space());
          entry.metric = plausible_metric(rng);
          entry.metric_valid = true;
          entry.head = bogus_head[q];
          entry.head_valid = true;
          entry.age = 0;
        },
        [&](NodeId r, NeighborDigest& d) {
          d.metric = plausible_metric(rng);
          d.metric_valid = true;
          d.is_head = bogus_head[r] == ids[r];
          ++stats.digests_mutated;
        });
    ++stats.nodes_touched;
  }
}

void corrupt_partial_frame(DensityProtocol& protocol, const graph::Graph& g,
                           const topology::IdAssignment& ids, util::Rng& rng,
                           CorruptionStats& stats) {
  // Start from an accurate cache (the state right after a clean round),
  // then tear the relayed digest lists the way a half-received frame
  // would: truncations, flag flips, ids rewritten to other nodes.
  for (NodeId p = 0; p < g.node_count(); ++p) {
    plant_true_neighbors(
        protocol, g, ids, p, stats,
        [&](NodeId q, DensityProtocol::CacheEntry& entry) {
          entry.dag_id = rng.below(protocol.name_space());
          entry.metric = plausible_metric(rng);
          entry.metric_valid = true;
          entry.head = ids[q];
          entry.head_valid = rng.chance(0.5);
          entry.age = 0;
        },
        [&](NodeId, NeighborDigest& d) {
          d.metric = plausible_metric(rng);
          d.metric_valid = true;
          d.is_head = false;
        });
    auto s = protocol.mutable_state(p);
    for (auto& [id, entry] : s.cache) {
      auto& digests = entry.digests;
      if (digests.empty()) continue;
      if (rng.chance(0.5)) {  // torn tail
        digests.resize(rng.index(digests.size()) + 1);
        ++stats.digests_mutated;
      }
      if (rng.chance(0.4)) {  // corrupted id byte
        digests[rng.index(digests.size())].id = noisy_id(ids, rng);
        ++stats.digests_mutated;
      }
      if (rng.chance(0.4)) {  // flipped head bit
        NeighborDigest& d = digests[rng.index(digests.size())];
        d.is_head = !d.is_head;
        ++stats.digests_mutated;
      }
      // Keep the sorted-by-id invariant the protocol's binary searches
      // document; a torn frame reassembled by the radio layer would
      // still be ordered, just wrong.
      std::sort(digests.begin(), digests.end(),
                [](const NeighborDigest& a, const NeighborDigest& b) {
                  return a.id < b.id;
                });
    }
    ++stats.nodes_touched;
  }
}

}  // namespace

CorruptionStats StateCorruptor::apply(core::DensityProtocol& protocol,
                                      FaultClass fault,
                                      util::Rng& rng) const {
  CorruptionStats stats;
  switch (fault) {
    case FaultClass::kRandomAll:
      protocol.corrupt_all(rng);
      stats.nodes_touched = protocol.node_count();
      break;
    case FaultClass::kMetricSkew:
      corrupt_metric_skew(protocol, *graph_, *ids_, rng, stats);
      break;
    case FaultClass::kClusterIdNoise:
      corrupt_cluster_id_noise(protocol, *graph_, *ids_, rng, stats);
      break;
    case FaultClass::kStaleCache:
      corrupt_stale_cache(protocol, *graph_, *ids_, rng, stats);
      break;
    case FaultClass::kHierarchyLoops:
      corrupt_hierarchy_loops(protocol, *graph_, *ids_, rng, stats);
      break;
    case FaultClass::kPartialFrame:
      corrupt_partial_frame(protocol, *graph_, *ids_, rng, stats);
      break;
  }
  return stats;
}

}  // namespace ssmwn::verify
