// One self-stabilization trial: corrupt → run to fixpoint on BOTH
// engines → check the legitimacy predicates and cross-engine agreement.
//
// A trial is the unit the certifier aggregates and the shrinker
// minimizes, so it is a pure function of its `TrialSpec`: every random
// draw — deployment, protocol construction, corruption, loss, daemon
// timing — derives from the spec's single seed through fixed split
// order. Two executions of the same spec produce bit-identical
// `TrialResult`s, on any machine.
//
// The differential part: the synchronous stepper (sim::Network) and the
// event-driven engine (sim::AsyncNetwork, under the spec's daemon) both
// start from the same corruption stream (same constructor rng, same
// chaos draws; the async half may size its cache timeout for the
// daemon's unfairness, which only shifts the planted entry ages) and
// must independently reach a legitimate configuration — and, for
// variants whose head identity is a pure function of the topology, the
// *same* one (the synchronous oracle's).
// An engine-specific bug that happens to stabilize to a plausible-but-
// different fixpoint fails the trial even though each engine's own
// predicate would pass.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "core/clustering.hpp"
#include "core/options.hpp"
#include "core/protocol.hpp"
#include "verify/faults.hpp"

namespace ssmwn::verify {

/// The confirmation window campaign verify runs use (and the TrialSpec
/// default): legitimacy must hold this many consecutive rounds.
inline constexpr std::size_t kDefaultConfirmRounds = 4;

/// Smallest horizon at which confirmation is *possible*: the quiescence
/// baseline makes round 1 never legitimate, so the earliest confirmed
/// run is rounds 2 .. 2 + confirm. Horizons below this fail every
/// trial by construction — the spec layer and the CLI both reject them.
inline constexpr std::size_t kMinHorizonRounds = kDefaultConfirmRounds + 2;

/// Everything one trial needs; deterministic replay key. `variant` uses
/// the campaign spelling (basic|dag|improved|full) so failing tuples
/// translate 1:1 into campaign spec axes.
struct TrialSpec {
  std::size_t n = 60;
  double radius = 0.14;
  std::string variant = "basic";
  FaultClass fault = FaultClass::kRandomAll;
  Daemon daemon = Daemon::kRandomized;
  double tau = 1.0;              ///< per-link delivery probability
  std::uint64_t seed = 0;        ///< sole source of randomness
  std::size_t horizon_rounds = 240;  ///< sync steps / async periods
  std::size_t confirm_rounds = kDefaultConfirmRounds;
};

/// Maps the campaign variant spelling to the feature toggles; throws
/// std::invalid_argument on unknown names.
[[nodiscard]] core::ClusterOptions cluster_options_for(
    std::string_view variant);

enum class Violation : std::uint8_t {
  kNone,
  /// The synchronous engine never reached (and held) legitimacy.
  kSyncDiverged,
  /// The event-driven engine never reached (and held) legitimacy.
  kAsyncDiverged,
  /// Legitimacy was reached but did not *stay* — the closure probe saw
  /// it break after the convergence detector confirmed it.
  kClosureBroken,
  /// Both engines stabilized, but to different head assignments although
  /// the variant's fixpoint is a pure function of the topology.
  kEngineDisagreement,
};

[[nodiscard]] std::string_view to_string(Violation violation) noexcept;

struct TrialResult {
  bool passed = false;
  Violation violation = Violation::kNone;

  bool sync_converged = false;
  std::size_t sync_steps = 0;        ///< steps to confirmed legitimacy
  std::uint64_t sync_messages = 0;   ///< deliveries up to that point
  std::size_t sync_relapses = 0;

  bool async_converged = false;
  double async_time_s = 0.0;         ///< virtual seconds to legitimacy
  std::uint64_t async_messages = 0;  ///< deliveries up to that point
  std::size_t async_relapses = 0;

  std::size_t heads = 0;             ///< final sync head count
  CorruptionStats corruption;
};

/// Test seams for mutation checks: a certifier that cannot catch a
/// deliberately broken system certifies nothing. `corrupt_oracle`
/// mutates the reference clustering after it is computed (a wrong
/// oracle must surface as a violation, not silently pass);
/// `interfere` runs against the protocol before every legitimacy check
/// on both engines (a stuck/Byzantine node the trial must flag).
struct TrialHooks {
  std::function<void(core::ClusteringResult&)> corrupt_oracle;
  std::function<void(core::DensityProtocol&)> interfere;
};

/// Executes the trial. Pure function of `spec` (and `hooks`, which
/// production callers leave null).
[[nodiscard]] TrialResult run_trial(const TrialSpec& spec,
                                    const TrialHooks* hooks = nullptr);

}  // namespace ssmwn::verify
