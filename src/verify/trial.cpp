#include "verify/trial.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/legitimacy.hpp"
#include "sim/async_network.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "stabilize/convergence.hpp"
#include "topology/generators.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn::verify {

core::ClusterOptions cluster_options_for(std::string_view variant) {
  if (variant == "basic") return core::ClusterOptions::basic();
  if (variant == "dag") return core::ClusterOptions::with_dag();
  if (variant == "improved") return core::ClusterOptions::improved();
  if (variant == "full") return core::ClusterOptions::full();
  throw std::invalid_argument("variant: expected basic|dag|improved|full, "
                              "got '" +
                              std::string(variant) + "'");
}

std::string_view to_string(Violation violation) noexcept {
  switch (violation) {
    case Violation::kNone: return "none";
    case Violation::kSyncDiverged: return "sync-diverged";
    case Violation::kAsyncDiverged: return "async-diverged";
    case Violation::kClosureBroken: return "closure-broken";
    case Violation::kEngineDisagreement: return "engine-disagreement";
  }
  return "?";
}

namespace {

sim::DaemonKind sim_daemon(Daemon daemon) noexcept {
  switch (daemon) {
    case Daemon::kSynchronous: return sim::DaemonKind::kSynchronous;
    case Daemon::kRandomized: return sim::DaemonKind::kRandomized;
    case Daemon::kUnfair: return sim::DaemonKind::kUnfairRoundRobin;
  }
  return sim::DaemonKind::kRandomized;
}

/// Wraps LegitimacyCheck with the optional interference hook so a
/// mutation test can keep poking the protocol between checks.
bool checked_legitimacy(core::LegitimacyCheck& check,
                        core::DensityProtocol& protocol,
                        const TrialHooks* hooks) {
  if (hooks != nullptr && hooks->interfere) hooks->interfere(protocol);
  return check.check();
}

}  // namespace

TrialResult run_trial(const TrialSpec& spec, const TrialHooks* hooks) {
  TrialResult result;

  // Fixed split order — adding a stream later must never perturb the
  // existing ones (same discipline as campaign::execute_run).
  util::Rng rng(spec.seed);
  util::Rng deploy_rng = rng.split();
  util::Rng protocol_rng = rng.split();
  util::Rng chaos_rng = rng.split();
  util::Rng sync_loss_rng = rng.split();
  util::Rng async_loss_rng = rng.split();
  util::Rng engine_rng = rng.split();

  const auto points = topology::uniform_points(spec.n, deploy_rng);
  const auto ids = topology::random_ids(spec.n, deploy_rng);
  const graph::Graph g = topology::unit_disk_graph(points, spec.radius);

  core::ProtocolConfig pconfig;
  pconfig.cluster = cluster_options_for(spec.variant);
  pconfig.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  pconfig.cache_max_age = spec.tau < 1.0 ? 16 : 8;

  const bool exact = core::head_identity_is_deterministic(pconfig.cluster);
  core::ClusteringResult oracle;
  if (exact) {
    oracle = core::cluster_density(g, ids, pconfig.cluster);
    if (hooks != nullptr && hooks->corrupt_oracle) {
      hooks->corrupt_oracle(oracle);
    }
  }

  const StateCorruptor corruptor(g, ids);
  const double confirm = static_cast<double>(spec.confirm_rounds);
  const double horizon = static_cast<double>(spec.horizon_rounds);

  // --- synchronous engine ---------------------------------------------
  // Copies of the protocol/chaos streams, so the async half below starts
  // from the *identical* corrupted state.
  std::vector<topology::ProtocolId> sync_heads;
  {
    util::Rng prng = protocol_rng;
    util::Rng chaos = chaos_rng;
    core::DensityProtocol protocol(ids, pconfig, prng);
    result.corruption = corruptor.apply(protocol, spec.fault, chaos);

    const auto medium = sim::make_loss_model(spec.tau, sync_loss_rng);
    sim::Network network(g, protocol, *medium, 1);
    core::LegitimacyCheck legitimacy(g, protocol, exact ? &oracle : nullptr);

    std::size_t rounds = 0;
    const auto report = stabilize::run_until_stable_virtual(
        [&] {
          network.step();
          return static_cast<double>(++rounds);
        },
        [&] { return network.messages_delivered(); },
        [&] { return checked_legitimacy(legitimacy, protocol, hooks); },
        confirm, horizon);
    result.sync_converged = report.converged;
    result.sync_steps = static_cast<std::size_t>(
        report.converged ? report.stabilization_time_s
                         : report.time_simulated_s);
    result.sync_messages = report.converged ? report.messages_to_converge
                                            : report.messages_total;
    result.sync_relapses = report.relapses;

    // Closure probe: "and stays there". The detector already confirmed
    // `confirm_rounds` of continuous legitimacy; keep stepping past the
    // confirmation window and require the predicate to keep holding.
    bool closed = report.converged;
    for (std::size_t extra = 0; closed && extra < spec.confirm_rounds;
         ++extra) {
      network.step();
      closed = checked_legitimacy(legitimacy, protocol, hooks);
    }
    if (!result.sync_converged) {
      result.violation = Violation::kSyncDiverged;
      return result;
    }
    if (!closed) {
      result.violation = Violation::kClosureBroken;
      return result;
    }

    std::size_t heads = 0;
    for (const char flag : protocol.head_flags()) heads += flag != 0;
    result.heads = heads;
    sync_heads = protocol.head_values();
  }

  // --- event-driven engine --------------------------------------------
  {
    util::Rng prng = protocol_rng;
    util::Rng chaos = chaos_rng;

    const auto medium = sim::make_loss_model(spec.tau, async_loss_rng);
    sim::AsyncConfig async;
    async.period_s = 1.0;
    async.daemon = sim_daemon(spec.daemon);

    // The cache timeout is a deployment constant that must cover the
    // daemon's worst-case inter-broadcast gap, or a fast node evicts a
    // live-but-slow victim between its frames and legitimacy flickers
    // after convergence (the certifier caught exactly this at
    // cache_max_age=8 under the 8x-unfair daemon: ~0.3% closure-broken
    // trials). Worst gap in the fast node's local rounds:
    // slowdown x (1+jitter)/(1-jitter), stretched by loss; keep 2x
    // margin for jitter stacking.
    core::ProtocolConfig async_pconfig = pconfig;
    if (spec.daemon == Daemon::kUnfair) {
      const double worst_gap = async.unfair_slowdown *
                               (1.0 + async.period_jitter) /
                               (1.0 - async.period_jitter) /
                               std::max(spec.tau, 0.05);
      async_pconfig.cache_max_age = std::max<std::uint32_t>(
          pconfig.cache_max_age,
          static_cast<std::uint32_t>(2.0 * worst_gap + 1.0));
    }

    core::DensityProtocol protocol(ids, async_pconfig, prng);
    (void)corruptor.apply(protocol, spec.fault, chaos);
    sim::AsyncNetwork network(g, protocol, *medium, async, engine_rng);
    core::LegitimacyCheck legitimacy(g, protocol, exact ? &oracle : nullptr);

    // The unfair daemon's victims broadcast unfair_slowdown× slower, so
    // one of *their* rounds spans several periods; scale the horizon so
    // every daemon gets the same number of slowest-node rounds.
    const double scale = spec.daemon == Daemon::kUnfair
                             ? async.unfair_slowdown
                             : 1.0;
    const auto report = sim::settle_async(
        network,
        [&] { return checked_legitimacy(legitimacy, protocol, hooks); },
        horizon * scale, confirm * scale);
    result.async_converged = report.converged;
    result.async_time_s = report.converged ? report.stabilization_time_s
                                           : report.time_simulated_s;
    result.async_messages = report.converged ? report.messages_to_converge
                                             : report.messages_total;
    result.async_relapses = report.relapses;

    bool closed = report.converged;
    for (std::size_t extra = 0; closed && extra < spec.confirm_rounds;
         ++extra) {
      network.run_for(async.period_s * scale);
      closed = checked_legitimacy(legitimacy, protocol, hooks);
    }
    if (!result.async_converged) {
      result.violation = Violation::kAsyncDiverged;
      return result;
    }
    if (!closed) {
      result.violation = Violation::kClosureBroken;
      return result;
    }

    // Differential oracle: with a topology-determined fixpoint the two
    // engines must land on the same head assignment, bit for bit. (For
    // dag/incumbency variants the fixpoint is history-dependent, so
    // only the per-engine structural checks above apply.)
    if (exact && protocol.head_values() != sync_heads) {
      result.violation = Violation::kEngineDisagreement;
      return result;
    }
  }

  result.passed = true;
  return result;
}

}  // namespace ssmwn::verify
