// Fault-class taxonomy and structured state corruption for the
// self-stabilization certifier.
//
// The paper's theorem quantifies over *every* initial configuration, but
// "scramble everything uniformly" explores only one corner of that space:
// uniformly random states are almost never *plausible*, and plausible-but-
// wrong states (a cache full of real neighbors with stale densities, a
// hierarchy whose parent pointers form a cycle) are exactly the states a
// real deployment reaches after partitions, reboots and bit-flips. The
// corruptor therefore generates arbitrary states from *named fault
// classes*, each a different seeded distribution over
// DensityProtocol::NodeState, so the certifier can report convergence
// time and message cost per class — and a regression in one class is
// visible instead of averaged away.
//
// Everything here is deterministic from the caller's Rng: the same
// (graph, ids, class, rng seed) produces bit-identical corrupted state,
// which is what makes failing trials replayable and shrinkable.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "topology/ids.hpp"
#include "util/rng.hpp"

namespace ssmwn::verify {

/// The fault-class taxonomy (see docs/TESTING.md for prose definitions).
enum class FaultClass : std::uint8_t {
  /// Every shared variable and cache uniformly scrambled, phantom
  /// neighbors included — the classic corrupt-all adversary.
  kRandomAll,
  /// Only the rank inputs are wrong: densities/metrics (and the DAG
  /// names they tie-break on) carry arbitrary values while the
  /// cache *topology* is truthful. Attacks rule R1/R2's election.
  kMetricSkew,
  /// Only the election outputs are wrong: head/cluster-id variables
  /// point at arbitrary (possibly nonexistent) nodes. Attacks the
  /// quiescence and independence parts of the predicate.
  kClusterIdNoise,
  /// Caches hold exactly the true radio neighbors, but every entry is
  /// stale: old metrics, old heads, ages at the eviction brink. The
  /// "rejoined after a partition" state.
  kStaleCache,
  /// head/parent pointers rewired into cycles and cross-links over real
  /// node ids — a structurally consistent-looking but illegitimate
  /// hierarchy. Attacks the clusterization-tree repair.
  kHierarchyLoops,
  /// Cache entries survive but their relayed digest lists are torn:
  /// truncated, duplicated into the wrong entry, ids/flags flipped —
  /// what a half-received frame would leave behind.
  kPartialFrame,
};

inline constexpr std::array<FaultClass, 6> kAllFaultClasses{
    FaultClass::kRandomAll,      FaultClass::kMetricSkew,
    FaultClass::kClusterIdNoise, FaultClass::kStaleCache,
    FaultClass::kHierarchyLoops, FaultClass::kPartialFrame,
};

/// Scheduler daemon the async half of a trial runs under. Mirrors
/// sim::DaemonKind but lives here so the campaign spec layer can sweep
/// the axis without pulling in the event-engine headers.
enum class Daemon : std::uint8_t {
  kSynchronous,
  kRandomized,
  kUnfair,
};

inline constexpr std::array<Daemon, 3> kAllDaemons{
    Daemon::kSynchronous, Daemon::kRandomized, Daemon::kUnfair};

[[nodiscard]] std::string_view to_string(FaultClass fault) noexcept;
[[nodiscard]] std::string_view to_string(Daemon daemon) noexcept;

/// Parses the to_string spellings; throws std::invalid_argument (which
/// campaign::SpecError derives from the same base the parser maps) on
/// anything else.
[[nodiscard]] FaultClass parse_fault_class(std::string_view text);
[[nodiscard]] Daemon parse_daemon(std::string_view text);

/// What one corruption pass actually did, for observability and tests.
struct CorruptionStats {
  std::size_t nodes_touched = 0;
  std::size_t cache_entries_planted = 0;
  std::size_t digests_mutated = 0;
};

/// Applies one fault class to a protocol instance. The graph and id
/// assignment are needed to build *plausible* corruption (real-neighbor
/// caches, real-node hierarchy cycles); they are observed, not owned.
class StateCorruptor {
 public:
  StateCorruptor(const graph::Graph& graph, const topology::IdAssignment& ids)
      : graph_(&graph), ids_(&ids) {}

  /// Overwrites protocol state according to `fault`, drawing only from
  /// `rng`. Deterministic: equal (graph, ids, fault, rng state) produce
  /// bit-identical protocol state.
  CorruptionStats apply(core::DensityProtocol& protocol, FaultClass fault,
                        util::Rng& rng) const;

 private:
  const graph::Graph* graph_;
  const topology::IdAssignment* ids_;
};

}  // namespace ssmwn::verify
