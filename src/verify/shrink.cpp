#include "verify/shrink.hpp"

#include <algorithm>
#include <vector>

namespace ssmwn::verify {

namespace {

/// The candidate moves, most aggressive first. Each returns true iff it
/// changed the spec (an unchanged candidate is not worth a re-run).
using Move = bool (*)(TrialSpec&);

bool halve_n(TrialSpec& spec) {
  if (spec.n < 4) return false;
  spec.n /= 2;
  return true;
}

bool decrement_n(TrialSpec& spec) {
  if (spec.n <= 2) return false;
  --spec.n;
  return true;
}

bool simplify_daemon(TrialSpec& spec) {
  if (spec.daemon == Daemon::kSynchronous) return false;
  spec.daemon = Daemon::kSynchronous;
  return true;
}

bool simplify_variant(TrialSpec& spec) {
  if (spec.variant == "basic") return false;
  spec.variant = "basic";
  return true;
}

bool lossless_medium(TrialSpec& spec) {
  if (spec.tau >= 1.0) return false;
  spec.tau = 1.0;
  return true;
}

constexpr Move kMoves[] = {halve_n, simplify_daemon, simplify_variant,
                           lossless_medium, decrement_n};

}  // namespace

ShrinkResult shrink(const TrialSpec& failing, const TrialHooks* hooks,
                    std::size_t budget) {
  ShrinkResult out;
  out.minimal = failing;

  // Reproduce first: a spec that passes has nothing to shrink, and the
  // violation class it fails with is the invariant every candidate must
  // preserve (shrinking a disagreement into a mere timeout would change
  // the bug under investigation).
  out.minimal_result = run_trial(failing, hooks);
  ++out.attempts;
  if (out.minimal_result.passed) return out;
  out.reproduced = true;
  const Violation target = out.minimal_result.violation;

  bool progressed = true;
  while (progressed && out.attempts < budget) {
    progressed = false;
    for (const Move move : kMoves) {
      if (out.attempts >= budget) break;
      TrialSpec candidate = out.minimal;
      if (!move(candidate)) continue;
      const TrialResult result = run_trial(candidate, hooks);
      ++out.attempts;
      if (result.passed || result.violation != target) continue;
      out.minimal = candidate;
      out.minimal_result = result;
      ++out.shrinks;
      progressed = true;
      // Greedy restart: after any acceptance, retry the aggressive
      // moves first — halving from the new, smaller spec.
      break;
    }
  }
  return out;
}

}  // namespace ssmwn::verify
