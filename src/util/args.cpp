#include "util/args.hpp"

#include <charconv>
#include <stdexcept>

namespace ssmwn::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--flag value` unless the next token is another flag (then it is a
    // bare boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool Args::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

namespace {

// Both numeric getters parse with std::from_chars: locale-independent
// (strto* honor LC_NUMERIC, so "--radius 0.08" would fail under a
// de_DE global locale) and strict — trailing junk like "5x" is an
// error, not a silent prefix parse. One strtod nicety is kept: a
// single leading '+', which from_chars alone rejects.
template <typename T>
bool parse_strict(const std::string& raw, T& value) {
  const char* first = raw.data();
  const char* last = raw.data() + raw.size();
  if (last - first > 1 && *first == '+' && *(first + 1) != '-' &&
      *(first + 1) != '+') {
    ++first;
  }
  const auto [ptr, ec] = std::from_chars(first, last, value);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto raw = get(name, "");
  if (raw.empty()) return fallback;
  std::int64_t value = 0;
  if (!parse_strict(raw, value)) {
    throw std::invalid_argument("--" + name + ": expected an integer, got '" +
                                raw + "'");
  }
  return value;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto raw = get(name, "");
  if (raw.empty()) return fallback;
  double value = 0.0;
  if (!parse_strict(raw, value)) {
    throw std::invalid_argument("--" + name + ": expected a number, got '" +
                                raw + "'");
  }
  return value;
}

std::int64_t Args::get_int_in(const std::string& name, std::int64_t fallback,
                              std::int64_t min, std::int64_t max) const {
  if (!has(name)) return fallback;
  const auto value = get_int(name, fallback);
  if (value < min || value > max) {
    throw std::invalid_argument("--" + name + " must be in [" +
                                std::to_string(min) + ", " +
                                std::to_string(max) + "] (got " +
                                std::to_string(value) + ")");
  }
  return value;
}

namespace {

// Shortest round-trip rendering for error messages: std::to_string's
// fixed %f turns a 1e-9 bound into "0.000000", which makes a rejected
// 0 look in-range.
std::string format_bound(double value) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, value);
  return std::string(buf, res.ptr);
}

}  // namespace

double Args::get_double_in(const std::string& name, double fallback,
                           double min, double max) const {
  if (!has(name)) return fallback;
  const auto value = get_double(name, fallback);
  // NaN fails both comparisons' complements, so reject via negation:
  // !(value >= min && value <= max) is true for NaN.
  if (!(value >= min && value <= max)) {
    throw std::invalid_argument("--" + name + " must be in [" +
                                format_bound(min) + ", " +
                                format_bound(max) + "] (got '" +
                                get(name, "") + "')");
  }
  return value;
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto raw = get(name, "");
  if (raw.empty()) return fallback;
  if (raw == "true" || raw == "1" || raw == "yes" || raw == "on") return true;
  if (raw == "false" || raw == "0" || raw == "no" || raw == "off") {
    return false;
  }
  throw std::invalid_argument("--" + name + ": expected a boolean, got '" +
                              raw + "'");
}

std::vector<std::string> Args::unknown() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace ssmwn::util
