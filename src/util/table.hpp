// Console table rendering for the benchmark harness. Every bench binary
// prints the paper's table next to the measured values, so a reader can
// eyeball the reproduction without post-processing. Also emits CSV for
// plotting.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace ssmwn::util {

/// Column-aligned text table with a title and optional footnotes.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);
  Table& note(std::string text);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double value, int precision = 2);
  static std::string integer(long long value);

  /// Renders the table with box-drawing rules and padding.
  [[nodiscard]] std::string render() const;
  /// Renders header+rows as comma-separated values (no title/notes).
  [[nodiscard]] std::string csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace ssmwn::util
