// Crash-consistent file publication: write-temp-then-atomic-rename.
//
// A report written straight onto its destination path can be torn by a
// crash mid-write and still *parse* — a half-emitted CSV is missing
// rows, not syntax. Every durable artifact (campaign CSV/JSON reports,
// bench BENCH_*.json emissions, campaign checkpoints) therefore goes
// through this helper instead: the bytes land in a sibling temp file,
// are fsync'd to stable storage, and only then rename(2)'d onto the
// destination — POSIX guarantees readers observe either the old
// complete file or the new complete file, never a mixture. The
// directory is fsync'd after the rename so the *name* survives a crash
// too, not just the inode.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

namespace ssmwn::util {

/// Staged write to `path`. Construction opens `<path>.tmp.<pid>` in the
/// same directory (same filesystem — rename must not cross devices) and
/// throws std::invalid_argument if that fails, so an unwritable
/// destination aborts before any expensive work, exactly like opening
/// the destination eagerly used to. `commit()` flushes, fsyncs, renames
/// onto `path`, and fsyncs the directory; the destructor unlinks the
/// temp file if commit was never reached, so an exception between
/// staging and commit leaves no debris and — crucially — leaves any
/// pre-existing `path` untouched.
///
/// Non-regular destinations (`/dev/null`, a fifo) are written through
/// directly: renaming over them would replace the device node itself
/// with a regular file, and atomicity is meaningless for such sinks.
class AtomicFile {
 public:
  explicit AtomicFile(std::string path);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// Buffered stream onto the temp file; pinned to the classic locale
  /// like every writer in the repo.
  [[nodiscard]] std::ostream& stream() noexcept { return *out_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Flush + fsync + rename + directory fsync. Throws std::runtime_error
  /// (the run-failure exit code, not bad-arguments) if any step fails;
  /// the destination is untouched in that case. Idempotent no-op after
  /// the first successful call.
  void commit();

 private:
  std::string path_;
  std::string temp_path_;
  // std::ofstream held behind a pointer so the header stays <fstream>-free.
  std::ostream* out_ = nullptr;
  void* file_ = nullptr;  // the owning std::ofstream
  bool committed_ = false;
  bool direct_ = false;  // non-regular destination: no temp, no rename
};

/// One-shot convenience: stage `contents`, commit, done. Same exception
/// contract as AtomicFile (invalid_argument on open, runtime_error on
/// commit).
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace ssmwn::util
