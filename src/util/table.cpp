#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ssmwn::util {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::note(std::string text) {
  notes_.push_back(std::move(text));
  return *this;
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::integer(long long value) { return std::to_string(value); }

namespace {

std::string pad(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return text + std::string(width - text.size(), ' ');
}

std::string rule(const std::vector<std::size_t>& widths) {
  std::string line = "+";
  for (std::size_t w : widths) {
    line += std::string(w + 2, '-');
    line += '+';
  }
  line += '\n';
  return line;
}

}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  if (!widths.empty()) {
    out << rule(widths);
    if (!header_.empty()) {
      out << "|";
      for (std::size_t i = 0; i < widths.size(); ++i) {
        out << ' ' << pad(i < header_.size() ? header_[i] : "", widths[i])
            << " |";
      }
      out << '\n' << rule(widths);
    }
    for (const auto& r : rows_) {
      out << "|";
      for (std::size_t i = 0; i < widths.size(); ++i) {
        out << ' ' << pad(i < r.size() ? r[i] : "", widths[i]) << " |";
      }
      out << '\n';
    }
    out << rule(widths);
  }
  for (const auto& n : notes_) out << "  * " << n << '\n';
  return out.str();
}

std::string Table::csv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) line += ',';
      // Cells are simple numerics/labels; quote only if a comma sneaks in.
      if (cells[i].find(',') != std::string::npos) {
        line += '"' + cells[i] + '"';
      } else {
        line += cells[i];
      }
    }
    return line;
  };
  std::string out;
  if (!header_.empty()) out += join(header_) + '\n';
  for (const auto& r : rows_) out += join(r) + '\n';
  return out;
}

}  // namespace ssmwn::util
