// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of the library (topology generation, mobility,
// the lossy radio medium, the randomized DAG renaming rule N1) draw from a
// `Rng` passed in by the caller, so every experiment is reproducible from a
// single 64-bit seed. The generator is xoshiro256**, seeded via SplitMix64,
// which is both fast and statistically strong enough for simulation work.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace ssmwn::util {

/// SplitMix64 step; used to expand a single 64-bit seed into a full
/// xoshiro256** state. Also usable standalone as a hash/mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies `std::uniform_random_bit_generator`,
/// so it can also feed standard-library distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire rejection).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in the closed range [lo, hi].
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability `p`.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Poisson-distributed integer with mean `lambda` (inversion for small
  /// lambda, normal-tail rejection for large).
  [[nodiscard]] std::uint64_t poisson(double lambda) noexcept;

  /// Standard normal variate (Marsaglia polar method).
  [[nodiscard]] double normal() noexcept;

  /// Uniformly chosen element index of a non-empty container size.
  [[nodiscard]] std::size_t index(std::size_t size) noexcept {
    return static_cast<std::size_t>(below(size));
  }

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give each node or each
  /// run its own stream so per-node randomness is order-independent.
  [[nodiscard]] Rng split() noexcept {
    return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL);
  }

  /// State equality — two generators that compare equal will produce the
  /// same stream forever. The differential stepping harness uses this to
  /// assert that a skipped node's generator was truly never advanced.
  [[nodiscard]] friend bool operator==(const Rng&, const Rng&) = default;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Returns a uniformly random permutation of {0, ..., n-1}.
[[nodiscard]] std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace ssmwn::util
