#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <locale>
#include <stdexcept>

namespace ssmwn::util {

namespace {

std::string parent_directory(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

[[noreturn]] void fail_commit(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

/// fsync by path: open read-write-less, sync, close. Linux allows fsync
/// on an O_RDONLY descriptor for both files and directories.
void fsync_path(const std::string& path, const std::string& label) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail_commit("cannot open " + label + " for fsync", path);
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    fail_commit("fsync failed on " + label, path);
  }
}

}  // namespace

AtomicFile::AtomicFile(std::string path) : path_(std::move(path)) {
  // Renaming over a device node or fifo would replace the node itself
  // with a regular file (`--csv /dev/null` must stay a discard, not
  // clobber the device) — write through such sinks directly.
  struct stat st{};
  direct_ = ::stat(path_.c_str(), &st) == 0 && !S_ISREG(st.st_mode);
  temp_path_ =
      direct_ ? path_ : path_ + ".tmp." + std::to_string(::getpid());
  auto* file = new std::ofstream(temp_path_, std::ios::trunc);
  if (!*file) {
    delete file;
    throw std::invalid_argument("cannot open output file '" + path_ +
                                "' (temp '" + temp_path_ + "' unwritable)");
  }
  file->imbue(std::locale::classic());
  file_ = file;
  out_ = file;
}

AtomicFile::~AtomicFile() {
  auto* file = static_cast<std::ofstream*>(file_);
  if (file != nullptr && file->is_open()) file->close();
  delete file;
  if (!committed_ && !direct_) ::unlink(temp_path_.c_str());
}

void AtomicFile::commit() {
  if (committed_) return;
  auto* file = static_cast<std::ofstream*>(file_);
  file->flush();
  if (!*file) fail_commit("failed writing", temp_path_);
  file->close();
  if (!*file) fail_commit("failed closing", temp_path_);
  if (direct_) {  // device/fifo sink: the write itself was the publish
    committed_ = true;
    return;
  }
  // Data must be durable BEFORE the rename publishes the name: rename
  // first and a crash could expose a complete-looking name whose blocks
  // never hit the disk.
  fsync_path(temp_path_, "temp file");
  if (::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    fail_commit("cannot rename onto", path_);
  }
  committed_ = true;  // destination now owns the bytes; stop cleanup
  fsync_path(parent_directory(path_), "directory");
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  AtomicFile file(path);
  file.stream().write(contents.data(),
                      static_cast<std::streamsize>(contents.size()));
  file.commit();
}

}  // namespace ssmwn::util
