// Environment-variable configuration for the bench harness.
//
// The paper averages each statistic over 1000 simulation runs. The bench
// binaries default to a smaller run count so the whole suite finishes in
// minutes; set SSMWN_RUNS to restore paper-scale averaging, SSMWN_SEED to
// change the experiment seed.
#pragma once

#include <cstdint>
#include <string>

namespace ssmwn::util {

/// Integer env var with default; malformed values fall back to `fallback`.
[[nodiscard]] std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// String env var with default (empty values fall back too).
[[nodiscard]] std::string env_string(const std::string& name,
                                     const std::string& fallback);

/// Number of simulation runs per configuration (SSMWN_RUNS, default given
/// by the caller per bench).
[[nodiscard]] std::size_t bench_runs(std::size_t fallback);

/// Root experiment seed (SSMWN_SEED, default 20050612).
[[nodiscard]] std::uint64_t bench_seed();

}  // namespace ssmwn::util
