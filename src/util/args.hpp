// Minimal command-line flag parsing for the CLI driver (`apps/ssmwn`).
// Flags are `--name value` or `--name=value`; booleans accept bare
// `--name`. No external dependencies; unknown flags are reported.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ssmwn::util {

class Args {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input
  /// (missing value for the last flag).
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Range-checked getters: like get_int/get_double, then reject values
  /// outside [min, max] with a message naming the flag and the accepted
  /// range. The range check applies to provided values only, never to
  /// the fallback — a command's default must already be legal. These
  /// exist so every numeric CLI flag rejects degenerate input (negative
  /// counts, ports above 65535, huge fractions) with exit code 2
  /// instead of wrapping through a cast or silently clamping.
  [[nodiscard]] std::int64_t get_int_in(const std::string& name,
                                        std::int64_t fallback,
                                        std::int64_t min,
                                        std::int64_t max) const;
  [[nodiscard]] double get_double_in(const std::string& name, double fallback,
                                     double min, double max) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  /// Flags that were provided but never queried via get*/has.
  [[nodiscard]] std::vector<std::string> unknown() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace ssmwn::util
