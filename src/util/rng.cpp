#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace ssmwn::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method: multiply-shift with rejection of
  // the biased low band.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion in the log domain to avoid underflow.
    const double limit = -lambda;
    double sum = 0.0;
    std::uint64_t k = 0;
    while (true) {
      sum += std::log(uniform());
      if (sum < limit) return k;
      ++k;
    }
  }
  // Normal approximation with continuity correction; adequate for the
  // large-lambda topology workloads (lambda >= 30) used here.
  while (true) {
    const double draw = lambda + std::sqrt(lambda) * normal() + 0.5;
    if (draw >= 0.0) return static_cast<std::uint64_t>(draw);
  }
}

double Rng::normal() noexcept {
  while (true) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(std::span<std::size_t>(perm));
  return perm;
}

}  // namespace ssmwn::util
