// Bench-baseline regression gate (library half; the CLI driver is
// tools/bench_compare.cpp).
//
// Every bench binary emits a machine-readable BENCH_<name>.json
// (bench::JsonReport). Checked-in copies live under bench/baselines/;
// CI reruns the smoke benches and feeds both directories through
// compare_benchmarks, which fails the build when any *rate* metric
// (anything containing "/s": ticks/s, steps/s, updates/s) regressed by
// more than the tolerance. Non-rate metrics (counts, seconds, ratios)
// are cross-machine-noisy or not perf at all and are reported but never
// gated. The parser handles exactly the shape JsonReport writes — no
// external JSON dependency.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ssmwn::util {

/// One measured value from a BENCH_*.json report.
struct BenchRecord {
  std::string bench;   // the report's "bench" field
  std::string name;    // row name within the bench
  std::string metric;  // e.g. "ticks/s"
  std::size_t n = 0;
  unsigned threads = 1;
  double value = 0.0;
};

/// Records are matched across runs by everything except the value.
[[nodiscard]] bool same_series(const BenchRecord& a, const BenchRecord& b);

/// A rate metric — higher is better, eligible for gating.
[[nodiscard]] bool is_rate_metric(std::string_view metric);

/// Parses one JsonReport-shaped document. Returns false (and sets
/// `error`) on malformed input; on success appends to `out`.
bool parse_bench_json(std::string_view text, std::vector<BenchRecord>& out,
                      std::string& error);

/// Loads every BENCH_*.json directly inside `dir`.
bool load_bench_dir(const std::string& dir, std::vector<BenchRecord>& out,
                    std::string& error);

struct BenchComparison {
  BenchRecord baseline;
  double candidate_value = 0.0;
  /// candidate / baseline; for rate metrics < 1 means slower.
  double ratio = 1.0;
  bool gated = false;       // rate metric, eligible to fail the build
  bool regression = false;  // gated and ratio < 1 - tolerance
};

struct BenchCompareReport {
  std::vector<BenchComparison> compared;
  /// Baseline series with no matching candidate record. Non-rate series
  /// here are informational; rate series are duplicated into
  /// `missing_rates` and treated as integrity failures (see below).
  std::vector<BenchRecord> unmatched;
  /// *Rate* series in the baseline with no candidate record. A gate
  /// that silently skips the very series it exists to gate is a silent
  /// pass — an integrity failure unless the caller explicitly allows
  /// reduced coverage (a size-capped CI smoke run).
  std::vector<BenchRecord> missing_rates;
  /// Rate series in the candidate with no baseline record: perf data
  /// flowing past the gate ungated (typically a bench whose baseline
  /// was never committed). Integrity failure unless allowed — a capped
  /// smoke run may also measure points the full-scale baseline lacks.
  std::vector<BenchRecord> extra_rates;
  /// Records (either side) whose value is NaN or infinite. Every ratio
  /// comparison against such a value is vacuously false, so a NaN
  /// candidate would sail through the regression gate; always an
  /// integrity failure, never allowed.
  std::vector<BenchRecord> non_finite;

  [[nodiscard]] std::size_t regressions() const;
  /// Count of integrity failures under the given policy: `non_finite`
  /// always counts; `missing_rates` and `extra_rates` only when
  /// `allow_missing` is false.
  [[nodiscard]] std::size_t integrity_failures(bool allow_missing) const;
};

/// Compares candidate against baseline at fractional `tolerance`
/// (0.10 = a gated metric may be up to 10% slower before it counts as a
/// regression).
[[nodiscard]] BenchCompareReport compare_benchmarks(
    const std::vector<BenchRecord>& baseline,
    const std::vector<BenchRecord>& candidate, double tolerance);

/// Human-readable summary (one line per comparison; regressions and
/// integrity failures marked, the latter downgraded to warnings where
/// `allow_missing` applies).
[[nodiscard]] std::string render_comparison(const BenchCompareReport& report,
                                            double tolerance,
                                            bool allow_missing = false);

/// The exit-code policy tools/bench_compare.cpp ships: 0 pass,
/// 1 regression, 3 integrity failure (missing/extra rate series unless
/// allowed, non-finite values always). Integrity outranks regression —
/// a gate that cannot trust its inputs must not report a mere slowdown.
/// (2 is reserved for usage / I/O errors, decided before comparison.)
[[nodiscard]] int compare_exit_code(const BenchCompareReport& report,
                                    bool allow_missing);

}  // namespace ssmwn::util
