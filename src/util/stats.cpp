#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace ssmwn::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

double percentile(std::span<const double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> sample) noexcept {
  if (sample.empty()) return 0.0;
  return std::accumulate(sample.begin(), sample.end(), 0.0) /
         static_cast<double>(sample.size());
}

double stddev_of(std::span<const double> sample) noexcept {
  RunningStats stats;
  for (double x : sample) stats.add(x);
  return stats.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
  const auto nbins = bins_.size();
  std::size_t idx = 0;
  if (x >= hi_) {
    idx = nbins - 1;
  } else if (x > lo_) {
    idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                   static_cast<double>(nbins));
    idx = std::min(idx, nbins - 1);
  }
  ++bins_[idx];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(bins_.size());
}

double Histogram::bin_high(std::size_t i) const noexcept {
  return bin_low(i + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t count : bins_) peak = std::max(peak, count);
  std::ostringstream out;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const auto bar =
        bins_[i] * width / peak;
    out << '[';
    out.precision(3);
    out << bin_low(i) << ", " << bin_high(i) << ") ";
    out << std::string(bar, '#') << ' ' << bins_[i] << '\n';
  }
  return out.str();
}

}  // namespace ssmwn::util
