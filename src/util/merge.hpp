// Branchless kernels over sorted sequences — the primitives behind the
// protocol's hot loops (density intersections, digest-list diffs, the
// SoA divergence search).
//
// Everything here operates on contiguous sorted-unique-key ranges and is
// written in the two forms the optimizer handles best:
//
//   * counting merges advance both cursors with arithmetic on comparison
//     results (`i += (ka <= kb)`) instead of three-way if/else chains, so
//     there is no unpredictable branch per element and the loop body is a
//     handful of flag-setting instructions;
//   * searches use the branch-free "shrink by half, conditionally advance
//     the base" binary search, and the galloping variants bound the probe
//     window exponentially first, which wins when one side is much
//     shorter than the other (a digest delta against a full cache).
//
// All entry points take a key projection so the same kernels serve plain
// id arrays (`std::identity`) and digest structs (`d.id`). Sizes picked
// by `intersect_count` follow the classic merge-vs-gallop crossover: when
// the length ratio exceeds kGallopRatio the linear merge wastes O(long)
// work and galloping's O(short·log(long)) wins.
#pragma once

#include <cstddef>
#include <functional>

namespace ssmwn::util {

/// Linear-to-gallop crossover: gallop when one side is at least this many
/// times longer than the other. 16 is the usual sweet spot (see e.g.
/// timsort's galloping mode); at radio degrees both sides are tiny and
/// the linear merge wins, so the exact value is not load-bearing.
inline constexpr std::size_t kGallopRatio = 16;

/// Branch-free lower bound: first index in [0, n) whose key is >= `key`,
/// or n. The loop executes exactly ceil(log2(n)) iterations; the only
/// data-dependent operation is a conditional base advance, which compiles
/// to a cmov.
template <typename T, typename Key, typename Proj = std::identity>
[[nodiscard]] constexpr std::size_t lower_bound_index(const T* data,
                                                      std::size_t n,
                                                      const Key& key,
                                                      Proj proj = {}) noexcept {
  const T* base = data;
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (proj(base[half - 1]) < key) ? half : 0;
    n -= half;
  }
  return (n == 1 && proj(base[0]) < key) ? static_cast<std::size_t>(base - data) + 1
                                         : static_cast<std::size_t>(base - data);
}

/// Membership test on a sorted range via the branch-free lower bound.
template <typename T, typename Key, typename Proj = std::identity>
[[nodiscard]] constexpr bool contains_sorted(const T* data, std::size_t n,
                                             const Key& key,
                                             Proj proj = {}) noexcept {
  const std::size_t i = lower_bound_index(data, n, key, proj);
  return i < n && proj(data[i]) == key;
}

/// Galloping lower bound: exponential probe from `from`, then the
/// branch-free binary search inside the bracketed window. O(log d) where
/// d is the distance to the answer — the primitive behind the skewed
/// intersection path.
template <typename T, typename Key, typename Proj = std::identity>
[[nodiscard]] constexpr std::size_t gallop_lower_bound(const T* data,
                                                       std::size_t n,
                                                       std::size_t from,
                                                       const Key& key,
                                                       Proj proj = {}) noexcept {
  if (from >= n) return n;
  std::size_t step = 1;
  std::size_t lo = from;
  while (lo + step < n && proj(data[lo + step]) < key) {
    lo += step;
    step *= 2;
  }
  const std::size_t hi = (lo + step < n) ? lo + step + 1 : n;
  return lo + lower_bound_index(data + lo, hi - lo, key, proj);
}

/// |a ∩ b| by branchless linear merge — both cursors advance by the
/// comparison flags, no three-way branch. Best when sizes are balanced.
template <typename TA, typename TB, typename ProjA = std::identity,
          typename ProjB = std::identity>
[[nodiscard]] constexpr std::size_t intersect_count_linear(
    const TA* a, std::size_t na, const TB* b, std::size_t nb, ProjA pa = {},
    ProjB pb = {}) noexcept {
  std::size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    const auto ka = pa(a[i]);
    const auto kb = pb(b[j]);
    count += static_cast<std::size_t>(ka == kb);
    i += static_cast<std::size_t>(ka <= kb);
    j += static_cast<std::size_t>(kb <= ka);
  }
  return count;
}

/// |a ∩ b| by galloping the short side through the long side. Requires
/// na <= nb to be profitable; correct either way.
template <typename TA, typename TB, typename ProjA = std::identity,
          typename ProjB = std::identity>
[[nodiscard]] constexpr std::size_t intersect_count_gallop(
    const TA* a, std::size_t na, const TB* b, std::size_t nb, ProjA pa = {},
    ProjB pb = {}) noexcept {
  std::size_t count = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i < na && j < nb; ++i) {
    const auto key = pa(a[i]);
    j = gallop_lower_bound(b, nb, j, key, pb);
    if (j < nb && pb(b[j]) == key) {
      ++count;
      ++j;
    }
  }
  return count;
}

/// |a ∩ b| picking linear merge for balanced sizes and galloping for
/// skewed ones — the entry point the density kernels use.
template <typename TA, typename TB, typename ProjA = std::identity,
          typename ProjB = std::identity>
[[nodiscard]] constexpr std::size_t intersect_count(const TA* a,
                                                    std::size_t na,
                                                    const TB* b,
                                                    std::size_t nb,
                                                    ProjA pa = {},
                                                    ProjB pb = {}) noexcept {
  if (na * kGallopRatio < nb) return intersect_count_gallop(a, na, b, nb, pa, pb);
  if (nb * kGallopRatio < na) return intersect_count_gallop(b, nb, a, na, pb, pa);
  return intersect_count_linear(a, na, b, nb, pa, pb);
}

/// Single-pass symmetric difference over two sorted-unique-key ranges:
/// calls `only_a(elem)` for keys present only in `a`, `only_b(elem)` for
/// keys present only in `b`, and `both(ea, eb)` for matched keys. This is
/// the shape of the digest-delta walk in `deliver`: one merge yields the
/// removed ids, the added ids, and the payload-compare pairs together.
template <typename TA, typename TB, typename OnlyA, typename OnlyB,
          typename Both, typename ProjA = std::identity,
          typename ProjB = std::identity>
constexpr void merge_walk(const TA* a, std::size_t na, const TB* b,
                          std::size_t nb, OnlyA&& only_a, OnlyB&& only_b,
                          Both&& both, ProjA pa = {}, ProjB pb = {}) {
  std::size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const auto ka = pa(a[i]);
    const auto kb = pb(b[j]);
    if (ka < kb) {
      only_a(a[i++]);
    } else if (kb < ka) {
      only_b(b[j++]);
    } else {
      both(a[i++], b[j++]);
    }
  }
  while (i < na) only_a(a[i++]);
  while (j < nb) only_b(b[j++]);
}

/// In-place sparse patch: for every element of sorted `delta`, find the
/// matching key in sorted `dest` and overwrite the whole element. This is
/// the receive side of a delta-encoded digest frame — the merge_walk
/// restricted to the `both` arm, with the cursor galloping across the
/// unchanged gaps (O(m·log gap) instead of O(n) when the delta is
/// sparse, which is the whole point of sending one).
///
/// Returns false — leaving `dest` partially patched — if any delta key is
/// absent from `dest`. Callers treat that as "the base diverged" and fall
/// back to a full-frame delivery, which rewrites every element anyway, so
/// a partial patch of matching keys is never observable.
template <typename T, typename Proj = std::identity>
[[nodiscard]] constexpr bool patch_sorted(T* dest, std::size_t n,
                                          const T* delta, std::size_t m,
                                          Proj proj = {}) noexcept {
  std::size_t i = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const auto key = proj(delta[j]);
    i = gallop_lower_bound(dest, n, i, key, proj);
    if (i >= n || proj(dest[i]) != key) return false;
    dest[i] = delta[j];
    ++i;
  }
  return true;
}

/// First index where two same-typed arrays differ bitwise, or n. Scans
/// in blocks with a branch-free OR accumulator so the common all-equal
/// prefix runs at memory bandwidth, then refines inside the differing
/// block. For doubles callers pass the arrays reinterpreted as u64 —
/// bitwise is the contract here, not IEEE ==.
template <typename T>
[[nodiscard]] constexpr std::size_t first_mismatch_index(const T* a,
                                                         const T* b,
                                                         std::size_t n) noexcept {
  constexpr std::size_t kBlock = 32;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    bool any = false;
    for (std::size_t k = 0; k < kBlock; ++k) {
      any |= (a[i + k] != b[i + k]);
    }
    if (any) break;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}

}  // namespace ssmwn::util
