#include "util/env.hpp"

#include <cstdlib>

namespace ssmwn::util {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return parsed;
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  return raw;
}

std::size_t bench_runs(std::size_t fallback) {
  const std::int64_t value =
      env_int("SSMWN_RUNS", static_cast<std::int64_t>(fallback));
  return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_int("SSMWN_SEED", 20050612));
}

}  // namespace ssmwn::util
