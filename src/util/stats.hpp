// Online and batch statistics used by the benchmark harness and the
// metrics library: Welford running moments, percentiles, and histograms.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ssmwn::util {

/// Numerically stable (Welford) accumulator for mean / variance / extrema.
/// Every benchmark averages hundreds of simulation runs through this.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolation percentile of an unsorted sample (copies and sorts).
/// `q` in [0, 1]; returns 0 for an empty sample.
[[nodiscard]] double percentile(std::span<const double> sample, double q);

[[nodiscard]] double mean_of(std::span<const double> sample) noexcept;
[[nodiscard]] double stddev_of(std::span<const double> sample) noexcept;

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so mass is never dropped silently.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::span<const std::size_t> bins() const noexcept { return bins_; }
  [[nodiscard]] double bin_low(std::size_t i) const noexcept;
  [[nodiscard]] double bin_high(std::size_t i) const noexcept;

  /// Renders a compact ASCII bar chart, one line per bin.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
};

}  // namespace ssmwn::util
