#include "util/bench_baseline.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ssmwn::util {
namespace {

/// Minimal scanner over the fixed JsonReport shape. Whitespace-tolerant,
/// order-sensitive (the writer always emits name, n, threads, metric,
/// value in that order).
struct Scanner {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  /// Consumes `"key":` (quotes included) at the cursor.
  bool key(std::string_view k) {
    skip_ws();
    const std::string want = "\"" + std::string(k) + "\"";
    if (text.substr(pos, want.size()) != want) return false;
    pos += want.size();
    return consume(':');
  }

  bool string_value(std::string& out) {
    if (!consume('"')) return false;
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] != '"') ++pos;
    if (pos >= text.size()) return false;
    out.assign(text.substr(start, pos - start));
    ++pos;  // closing quote
    return true;
  }

  bool number_value(double& out) {
    skip_ws();
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    const auto res = std::from_chars(begin, end, out);
    if (res.ec != std::errc{}) return false;
    pos = static_cast<std::size_t>(res.ptr - text.data());
    return true;
  }
};

}  // namespace

bool same_series(const BenchRecord& a, const BenchRecord& b) {
  return a.bench == b.bench && a.name == b.name && a.metric == b.metric &&
         a.n == b.n && a.threads == b.threads;
}

bool is_rate_metric(std::string_view metric) {
  return metric.find("/s") != std::string_view::npos;
}

bool parse_bench_json(std::string_view text, std::vector<BenchRecord>& out,
                      std::string& error) {
  Scanner s{text};
  std::string bench;
  if (!s.consume('{') || !s.key("bench") || !s.string_value(bench) ||
      !s.consume(',') || !s.key("records") || !s.consume('[')) {
    error = "malformed header (expected {\"bench\": ..., \"records\": [...)";
    return false;
  }
  s.skip_ws();
  if (s.consume(']')) return true;  // empty report
  do {
    BenchRecord r;
    r.bench = bench;
    double n = 0.0, threads = 0.0;
    if (!s.consume('{') || !s.key("name") || !s.string_value(r.name) ||
        !s.consume(',') || !s.key("n") || !s.number_value(n) ||
        !s.consume(',') || !s.key("threads") || !s.number_value(threads) ||
        !s.consume(',') || !s.key("metric") || !s.string_value(r.metric) ||
        !s.consume(',') || !s.key("value") || !s.number_value(r.value) ||
        !s.consume('}')) {
      error = "malformed record #" + std::to_string(out.size());
      return false;
    }
    r.n = static_cast<std::size_t>(n);
    r.threads = static_cast<unsigned>(threads);
    out.push_back(std::move(r));
  } while (s.consume(','));
  if (!s.consume(']')) {
    error = "unterminated records array";
    return false;
  }
  return true;
}

bool load_bench_dir(const std::string& dir, std::vector<BenchRecord>& out,
                    std::string& error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    error = dir + " is not a directory";
    return false;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.starts_with("BENCH_") &&
        name.ends_with(".json")) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) {
      error = "cannot read " + path.string();
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string parse_error;
    if (!parse_bench_json(buffer.str(), out, parse_error)) {
      error = path.string() + ": " + parse_error;
      return false;
    }
  }
  return true;
}

std::size_t BenchCompareReport::regressions() const {
  std::size_t count = 0;
  for (const auto& c : compared) count += c.regression;
  return count;
}

std::size_t BenchCompareReport::integrity_failures(bool allow_missing) const {
  std::size_t count = non_finite.size();
  if (!allow_missing) count += missing_rates.size() + extra_rates.size();
  return count;
}

BenchCompareReport compare_benchmarks(
    const std::vector<BenchRecord>& baseline,
    const std::vector<BenchRecord>& candidate, double tolerance) {
  BenchCompareReport report;
  for (const BenchRecord& base : baseline) {
    if (!std::isfinite(base.value)) report.non_finite.push_back(base);
    const auto match =
        std::find_if(candidate.begin(), candidate.end(),
                     [&](const BenchRecord& c) { return same_series(c, base); });
    if (match == candidate.end()) {
      report.unmatched.push_back(base);
      if (is_rate_metric(base.metric)) report.missing_rates.push_back(base);
      continue;
    }
    BenchComparison cmp;
    cmp.baseline = base;
    cmp.candidate_value = match->value;
    cmp.ratio = base.value != 0.0 ? match->value / base.value : 1.0;
    cmp.gated = is_rate_metric(base.metric) && base.value > 0.0;
    cmp.regression = cmp.gated && cmp.ratio < 1.0 - tolerance;
    report.compared.push_back(std::move(cmp));
  }
  for (const BenchRecord& cand : candidate) {
    if (!std::isfinite(cand.value)) report.non_finite.push_back(cand);
    if (!is_rate_metric(cand.metric)) continue;
    const auto match =
        std::find_if(baseline.begin(), baseline.end(),
                     [&](const BenchRecord& b) { return same_series(b, cand); });
    if (match == baseline.end()) report.extra_rates.push_back(cand);
  }
  return report;
}

std::string render_comparison(const BenchCompareReport& report,
                              double tolerance, bool allow_missing) {
  std::ostringstream out;
  out << "bench_compare: " << report.compared.size() << " series, tolerance "
      << tolerance * 100.0 << "%\n";
  const auto series = [&out](const BenchRecord& b) -> std::ostringstream& {
    out << b.bench << " / " << b.name << " [" << b.metric << ", n=" << b.n
        << ", threads=" << b.threads << "]";
    return out;
  };
  for (const auto& c : report.compared) {
    out << (c.regression ? "  REGRESSION " : (c.gated ? "  ok         "
                                                      : "  (info)     "));
    series(c.baseline) << ": " << c.baseline.value << " -> "
                       << c.candidate_value << " (" << c.ratio * 100.0
                       << "%)\n";
  }
  for (const auto& b : report.unmatched) {
    const bool rate = is_rate_metric(b.metric);
    out << (rate ? (allow_missing ? "  missing-ok " : "  MISSING    ")
                 : "  (info)     ");
    series(b) << ": no candidate record"
              << (rate ? (allow_missing ? " (allowed by --allow-missing)"
                                        : " — gated series vanished")
                       : " (warn only)")
              << "\n";
  }
  for (const auto& b : report.extra_rates) {
    out << (allow_missing ? "  extra-ok   " : "  EXTRA      ");
    series(b) << ": candidate rate series has no baseline"
              << (allow_missing ? " (allowed by --allow-missing)"
                                : " — commit a baseline or drop the series")
              << "\n";
  }
  for (const auto& b : report.non_finite) {
    out << "  NON-FINITE ";
    series(b) << ": value " << b.value << " is not a number\n";
  }
  const std::size_t bad = report.regressions();
  const std::size_t broken = report.integrity_failures(allow_missing);
  if (broken > 0) {
    out << "FAIL: " << broken << " integrity failure(s) — the gate cannot "
        << "trust its inputs\n";
  } else if (bad > 0) {
    out << "FAIL: " << bad << " gated metric(s) regressed beyond "
        << tolerance * 100.0 << "%\n";
  } else {
    out << "PASS: no gated metric regressed beyond " << tolerance * 100.0
        << "%\n";
  }
  return out.str();
}

int compare_exit_code(const BenchCompareReport& report, bool allow_missing) {
  if (report.integrity_failures(allow_missing) > 0) return 3;
  return report.regressions() > 0 ? 1 : 0;
}

}  // namespace ssmwn::util
