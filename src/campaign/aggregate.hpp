// Aggregation of per-run metrics into per-scenario summaries.
//
// The aggregator is fed run results in *plan order* (the runner returns
// them indexed by plan slot), so the accumulation order — and therefore
// every floating-point sum — is independent of how many threads executed
// the campaign. That is the root of the replay guarantee: byte-identical
// CSV/JSON for any `--threads N` (tests/campaign/replay_test.cpp).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

#include "campaign/runner.hpp"

namespace ssmwn::campaign {

/// Summary statistics of one metric across a grid point's replications.
struct MetricSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample (n-1) standard deviation
  double p50 = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// The metrics reported per scenario, in fixed report order.
inline constexpr std::array<std::string_view, 4> kMetricNames{
    "stability", "delta", "reaffiliation", "cluster_count"};

struct ScenarioAggregate {
  std::size_t grid_index = 0;
  /// Summaries indexed like kMetricNames.
  std::array<MetricSummary, kMetricNames.size()> metrics{};

  [[nodiscard]] const MetricSummary& stability() const noexcept {
    return metrics[0];
  }
  [[nodiscard]] const MetricSummary& delta() const noexcept {
    return metrics[1];
  }
  [[nodiscard]] const MetricSummary& reaffiliation() const noexcept {
    return metrics[2];
  }
  [[nodiscard]] const MetricSummary& cluster_count() const noexcept {
    return metrics[3];
  }
};

/// Collects per-run samples keyed by grid point and summarizes them.
/// Percentiles need the raw samples, so the aggregator keeps them all;
/// a campaign's sample storage is grid × replications × 4 doubles.
class MetricsAggregator {
 public:
  explicit MetricsAggregator(std::size_t grid_count);

  /// Feeds one run's metrics. Call in plan order for deterministic
  /// floating-point results (see the header comment).
  void add(std::size_t grid_index, const RunMetrics& metrics);

  [[nodiscard]] std::size_t grid_count() const noexcept {
    return samples_.size();
  }

  /// Summarizes every grid point, in grid order.
  [[nodiscard]] std::vector<ScenarioAggregate> summarize() const;

 private:
  // samples_[grid][metric] — one sample vector per metric per grid point.
  std::vector<std::array<std::vector<double>, kMetricNames.size()>> samples_;
};

}  // namespace ssmwn::campaign
