// Aggregation of per-run metrics into per-scenario summaries.
//
// The aggregator is fed run results in *plan order* (the runner returns
// them indexed by plan slot), so the accumulation order — and therefore
// every floating-point sum — is independent of how many threads executed
// the campaign. That is the root of the replay guarantee: byte-identical
// CSV/JSON for any `--threads N` (tests/campaign/replay_test.cpp).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

#include "campaign/runner.hpp"

namespace ssmwn::campaign {

/// Summary statistics of one metric across a grid point's replications.
struct MetricSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample (n-1) standard deviation
  double p50 = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// The metrics reported per scenario, in fixed report order. The first
/// kSyncMetricCount are the window-loop metrics every campaign reports;
/// converge_time/messages only mean something for async, live, or
/// verify grid points; reconverge_* (per-perturbation re-convergence)
/// only for live (protocol-under-mobility) points; and the trailing
/// sync_converge_steps/sync_messages — the synchronous half of a
/// cross-engine certification trial — only for verify points. The
/// report writers emit a metric row only when the plan contains a point
/// that measures it (see report.hpp — this is what keeps pre-existing
/// sync-only, async-only, and live campaigns byte-identical).
inline constexpr std::array<std::string_view, 10> kMetricNames{
    "stability",     "delta",          "reaffiliation",
    "cluster_count", "converge_time",  "messages",
    "reconverge_time", "reconverge_messages",
    "sync_converge_steps", "sync_messages"};

/// Number of metrics a purely synchronous campaign reports.
inline constexpr std::size_t kSyncMetricCount = 4;
/// Number of metrics a campaign without live points reports (at most).
inline constexpr std::size_t kAsyncMetricCount = 6;
/// Number of metrics a campaign without verify points reports (at most).
inline constexpr std::size_t kLiveMetricCount = 8;

/// Whether metric `m` (an index into kMetricNames) is actually measured
/// by runs of the given kind — the report writers emit only these, so
/// no row ever carries a fabricated value (a hardcoded delta=0 for an
/// async run would be indistinguishable from a measured one).
/// stability and cluster_count are measured everywhere; delta and
/// reaffiliation are classic window-loop (sync oracle) metrics;
/// converge_time and messages are cold-start convergence metrics
/// (event engine, or either engine in live mode, or the async half of a
/// verify trial); reconverge_* are per-perturbation metrics of live
/// runs; sync_converge_steps/sync_messages are the synchronous half of
/// a verify trial.
[[nodiscard]] constexpr bool metric_applies(
    std::size_t m, bool async_point, bool live_point = false,
    bool verify_point = false) noexcept {
  if (m == 0 || m == 3) return true;        // stability, cluster_count
  if (m == 1 || m == 2) return !async_point && !live_point && !verify_point;
  if (m == 4 || m == 5) return async_point || live_point || verify_point;
  if (m == 6 || m == 7) return live_point;   // reconverge_*
  return verify_point;                       // sync_* trial halves
}

struct ScenarioAggregate {
  std::size_t grid_index = 0;
  /// Summaries indexed like kMetricNames.
  std::array<MetricSummary, kMetricNames.size()> metrics{};

  [[nodiscard]] const MetricSummary& stability() const noexcept {
    return metrics[0];
  }
  [[nodiscard]] const MetricSummary& delta() const noexcept {
    return metrics[1];
  }
  [[nodiscard]] const MetricSummary& reaffiliation() const noexcept {
    return metrics[2];
  }
  [[nodiscard]] const MetricSummary& cluster_count() const noexcept {
    return metrics[3];
  }
  [[nodiscard]] const MetricSummary& converge_time() const noexcept {
    return metrics[4];
  }
  [[nodiscard]] const MetricSummary& messages() const noexcept {
    return metrics[5];
  }
  [[nodiscard]] const MetricSummary& reconverge_time() const noexcept {
    return metrics[6];
  }
  [[nodiscard]] const MetricSummary& reconverge_messages() const noexcept {
    return metrics[7];
  }
  [[nodiscard]] const MetricSummary& sync_converge_steps() const noexcept {
    return metrics[8];
  }
  [[nodiscard]] const MetricSummary& sync_messages() const noexcept {
    return metrics[9];
  }
};

/// Collects per-run samples keyed by grid point and summarizes them.
/// Percentiles need the raw samples, so the aggregator keeps them all;
/// a campaign's sample storage is grid × replications ×
/// kMetricNames.size() doubles.
class MetricsAggregator {
 public:
  explicit MetricsAggregator(std::size_t grid_count);

  /// Feeds one run's metrics. Call in plan order for deterministic
  /// floating-point results (see the header comment).
  void add(std::size_t grid_index, const RunMetrics& metrics);

  [[nodiscard]] std::size_t grid_count() const noexcept {
    return samples_.size();
  }

  /// Summarizes every grid point, in grid order.
  [[nodiscard]] std::vector<ScenarioAggregate> summarize() const;

 private:
  // samples_[grid][metric] — one sample vector per metric per grid point.
  std::vector<std::array<std::vector<double>, kMetricNames.size()>> samples_;
};

}  // namespace ssmwn::campaign
