// Declarative experiment specifications for the campaign engine.
//
// The paper's claims are statistical — stability of the density-based
// clustering under mobility, churn, and lossy media, averaged over many
// deployments — so a single hand-wired run is never the interesting
// unit. A `CampaignSpec` describes a whole *grid* of scenarios in a
// simple `key = value` file (lists sweep an axis, `#` starts a comment):
//
//   name         = mobility-stability
//   topology     = uniform            # uniform | grid | poisson
//   n            = 1000               # node count (poisson: intensity λ)
//   radius       = 0.08
//   variant      = basic, improved    # basic | dag | improved | full
//   mobility     = random-direction   # none | random-direction | random-waypoint
//   speed_max    = 1.6, 10            # m/s — sweeps pedestrian vs vehicular
//   steps        = 450                # 2 s windows (15 min, like the paper)
//   replications = 16
//   seed_base    = 20050612
//   scheduler    = sync, async        # execution engine (default sync)
//   period_jitter = 0.1               # async: ± fraction of the period
//   link_delay   = 0.02, 0.2          # async: mean link delay (seconds)
//   protocol_live = true              # run the protocol live under mobility
//   topology_update = incremental, rebuild  # live: delta vs full rebuild
//   live_horizon = 64                 # live: rounds per convergence phase
//   verify_faults = true              # self-stabilization certification trials
//   fault_class  = stale-cache, partial-frame   # corruption distribution
//   daemon       = synchronous, randomized, unfair  # async-half adversary
//   stepping     = full, dirty        # quiescence-aware dirty-region stepper
//
// Expansion takes the Cartesian product of every list-valued axis and
// schedules `replications` independent runs per grid point. Each run's
// seed derives from (seed_base, canonical serialization of its grid
// point, replication index) — *not* from the position of fields in the
// file — so seeds are stable under field reordering and unique across
// the grid (asserted by tests/campaign/spec_property_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "verify/faults.hpp"

namespace ssmwn::campaign {

/// Malformed spec (unknown key, bad value, impossible combination).
/// Derives from std::invalid_argument so the CLI maps it to the
/// bad-arguments exit code rather than the run-failure one.
class SpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

enum class TopologyKind { kUniform, kGrid, kPoisson };
enum class MobilityKind { kNone, kRandomDirection, kRandomWaypoint };

/// Protocol variant, mirroring core::ClusterOptions presets.
enum class Variant { kBasic, kDag, kImproved, kFull };

/// Which execution engine plays the run. `kSync` is the oracle-based
/// window loop over the synchronous Δ(τ) abstraction; `kAsync` executes
/// the distributed protocol on the event-driven engine
/// (sim::AsyncNetwork) from an adversarial initial state and measures
/// virtual-time convergence and messages-to-convergence.
enum class SchedulerKind { kSync, kAsync };

/// How a live (protocol_live=true) run maintains the evolving graph.
/// `kIncremental` threads topology::LiveTopology edge deltas through the
/// engine — protocol caches for severed links are invalidated eagerly
/// (a link layer that reports loss of connectivity). `kRebuild`
/// reconstructs the unit-disk graph from scratch every window and tells
/// the protocol nothing — recovery is pure self-stabilization through
/// cache aging. The graphs are provably identical; the *notification*
/// differs, which is exactly the scientific axis.
enum class TopologyUpdateKind { kRebuild, kIncremental };

/// Which stepper executes a protocol-under-engine run: the classic full
/// sweep or the quiescence-aware dirty-region stepper (sim::Stepping).
/// Dirty stepping is bit-identical to full stepping — the axis sweeps
/// *cost*, never results — so campaigns can flip it on for speed and
/// replay tests can assert the outputs match byte for byte.
enum class SteppingKind { kFull, kDirty };

[[nodiscard]] std::string_view to_string(TopologyKind kind) noexcept;
[[nodiscard]] std::string_view to_string(MobilityKind kind) noexcept;
[[nodiscard]] std::string_view to_string(Variant variant) noexcept;
[[nodiscard]] std::string_view to_string(SchedulerKind kind) noexcept;
[[nodiscard]] std::string_view to_string(TopologyUpdateKind kind) noexcept;
[[nodiscard]] std::string_view to_string(SteppingKind kind) noexcept;

/// One fully resolved grid point: everything a single run needs except
/// its seed.
struct ScenarioConfig {
  TopologyKind topology = TopologyKind::kUniform;
  std::size_t n = 300;          // node count; intensity λ for poisson
  double radius = 0.08;         // unit-disk radio range (unit square)
  Variant variant = Variant::kBasic;
  MobilityKind mobility = MobilityKind::kNone;
  double speed_min = 0.0;       // m/s
  double speed_max = 1.6;       // m/s
  double tau = 1.0;             // per-link delivery probability per window
  double churn_down = 0.0;      // P(up node goes down) per window
  double churn_up = 0.5;        // P(down node recovers) per window
  std::size_t steps = 50;       // snapshot windows per run
  double window_s = 2.0;        // seconds simulated between snapshots
  double world_m = 1000.0;      // meters per unit-square side
  // Execution-engine axis (PR 3). For kAsync, window_s doubles as the
  // mean per-node broadcast period and steps bounds the virtual horizon
  // (steps × window_s seconds).
  SchedulerKind scheduler = SchedulerKind::kSync;
  double period_jitter = 0.1;   // ± fraction of the broadcast period
  double link_delay = 0.02;     // mean per-link delivery delay (s)
  // Dynamic-topology axis (PR 4). protocol_live=true runs the
  // *distributed protocol* continuously while mobility/churn evolve the
  // graph (on either engine) and measures per-perturbation
  // re-convergence; false keeps the classic modes. For live runs,
  // `steps` counts perturbation windows and `live_horizon` bounds each
  // convergence phase (in rounds: sync steps or async broadcast
  // periods). All three serialize into the canonical string only when
  // protocol_live is true, so pre-existing seeds are untouched.
  bool protocol_live = false;
  TopologyUpdateKind topology_update = TopologyUpdateKind::kIncremental;
  std::size_t live_horizon = 64;
  // Self-stabilization certification axis (PR 5). verify_faults=true
  // turns the run into one certification trial (src/verify/): corrupt
  // the protocol state with `fault_class`, run to fixpoint on BOTH
  // engines (the async half under `daemon`), check the legitimacy
  // predicates plus cross-engine agreement. `steps` bounds the horizon
  // in rounds. The three fields serialize into the canonical string
  // only when verify_faults is true — pre-existing seeds untouched.
  bool verify_faults = false;
  verify::FaultClass fault_class = verify::FaultClass::kRandomAll;
  verify::Daemon daemon = verify::Daemon::kRandomized;
  // Quiescence axis (PR 6). Selects the stepper for runs that execute
  // the protocol on an engine (live runs on either engine, classic
  // async runs); the classic sync modes are oracle-driven and have no
  // stepper, and certification trials pin their own execution, so the
  // axis is inapplicable there (see stepping_applies). Serializes into
  // the canonical string only when applicable AND dirty — every
  // pre-existing campaign's seeds and outputs stay byte-identical, and
  // a full-vs-dirty sweep differs only in the one new point's string.
  SteppingKind stepping = SteppingKind::kFull;
};

/// Whether the stepping axis has any effect on this grid point: the run
/// must execute the protocol on an engine with a stepper seam. (Classic
/// sync points cluster via the oracle; verify points run fixed
/// certification trials.)
[[nodiscard]] constexpr bool stepping_applies(
    const ScenarioConfig& config) noexcept {
  if (config.verify_faults) return false;
  return config.protocol_live || config.scheduler == SchedulerKind::kAsync;
}

/// Shortest decimal that round-trips to the exact double; used by the
/// canonical serialization and every report writer so numbers format
/// identically everywhere.
[[nodiscard]] std::string format_double(double value);

/// Fixed-order `key=value` serialization of a grid point. Identical
/// configs serialize identically regardless of how the spec file was
/// written; run seeds hash this string. The async-engine fields
/// (scheduler, period_jitter, link_delay) are appended **only when
/// scheduler != kSync**: a synchronous grid point serializes exactly as
/// it did before the execution-engine axis existed, so every seed of
/// every pre-existing campaign is stable across that release boundary.
[[nodiscard]] std::string canonical_config(const ScenarioConfig& config);

/// A parsed spec: scalar campaign-wide settings plus one value list per
/// sweepable axis (singleton lists for axes the file left at defaults).
struct CampaignSpec {
  std::string name = "campaign";
  std::size_t replications = 16;
  std::uint64_t seed_base = 20050612;
  double window_s = 2.0;
  double world_m = 1000.0;

  std::vector<TopologyKind> topology{TopologyKind::kUniform};
  std::vector<std::size_t> n{300};
  std::vector<double> radius{0.08};
  std::vector<Variant> variant{Variant::kBasic};
  std::vector<MobilityKind> mobility{MobilityKind::kNone};
  std::vector<double> speed_min{0.0};
  std::vector<double> speed_max{1.6};
  std::vector<double> tau{1.0};
  std::vector<double> churn_down{0.0};
  std::vector<double> churn_up{0.5};
  std::vector<std::size_t> steps{50};
  std::vector<SchedulerKind> scheduler{SchedulerKind::kSync};
  std::vector<double> period_jitter{0.1};
  std::vector<double> link_delay{0.02};
  std::vector<bool> protocol_live{false};
  std::vector<TopologyUpdateKind> topology_update{
      TopologyUpdateKind::kIncremental};
  std::size_t live_horizon = 64;  // scalar: rounds per convergence phase
  std::vector<bool> verify_faults{false};
  std::vector<verify::FaultClass> fault_class{verify::FaultClass::kRandomAll};
  std::vector<verify::Daemon> daemon{verify::Daemon::kRandomized};
  std::vector<SteppingKind> stepping{SteppingKind::kFull};
};

/// Parses `key = value` text. Throws SpecError on unknown keys,
/// duplicate keys, malformed values, lists on scalar-only keys, or
/// out-of-range settings (zero replications, negative radius, ...).
[[nodiscard]] CampaignSpec parse_spec_text(std::string_view text);
[[nodiscard]] CampaignSpec parse_spec(std::istream& in);
/// Loads and parses a spec file; throws SpecError if unreadable.
[[nodiscard]] CampaignSpec load_spec(const std::string& path);

/// Semantic validation shared by the parser and programmatic callers.
void validate(const CampaignSpec& spec);

/// One scheduled run of the expanded campaign.
struct RunPlanEntry {
  std::size_t grid_index = 0;   // into CampaignPlan::grid
  std::size_t replication = 0;  // 0-based within the grid point
  std::uint64_t seed = 0;       // sole source of the run's randomness
};

struct GridPoint {
  ScenarioConfig config;
  std::string canonical;  // canonical_config(config), cached
};

/// The expanded campaign: every grid point and every run, in a fixed
/// deterministic order (grid-major, replication-minor).
struct CampaignPlan {
  std::string name;
  std::size_t replications = 0;
  std::uint64_t seed_base = 0;
  std::vector<GridPoint> grid;
  std::vector<RunPlanEntry> runs;
};

/// Cartesian-expands the spec. Validates first; throws SpecError on
/// impossible combinations (e.g. speed_min > speed_max).
[[nodiscard]] CampaignPlan expand(const CampaignSpec& spec);

/// Seed of replication `rep` of the grid point with the given canonical
/// serialization. Deterministic, order-independent, and collision-
/// resistant across a campaign's grid (splitmix64 over an FNV-1a hash).
[[nodiscard]] std::uint64_t run_seed(std::uint64_t seed_base,
                                     std::string_view canonical,
                                     std::uint64_t replication) noexcept;

}  // namespace ssmwn::campaign
