#include "campaign/report.hpp"

#include <cstdio>
#include <locale>
#include <ostream>
#include <sstream>
#include <string>

namespace ssmwn::campaign {

namespace {

/// All numeric text in the reports flows through format_double (locale-
/// free by construction) or integer insertion on a stream pinned to the
/// classic locale by this helper — never through the global locale.
std::ostringstream classic_stream() {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  return out;
}

void append_escaped_json(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string config_fields_csv(const ScenarioConfig& c, bool extended,
                              bool live_schema, bool verify_schema,
                              bool dirty_schema) {
  std::ostringstream out = classic_stream();
  out << to_string(c.topology) << ',' << c.n << ','
      << format_double(c.radius) << ',' << to_string(c.variant) << ','
      << to_string(c.mobility) << ',' << format_double(c.speed_min) << ','
      << format_double(c.speed_max) << ',' << format_double(c.tau) << ','
      << format_double(c.churn_down) << ',' << format_double(c.churn_up)
      << ',' << c.steps << ',' << format_double(c.window_s) << ','
      << format_double(c.world_m);
  if (extended) {
    // The async knobs don't apply to a sync run; empty cells, not the
    // arbitrary first value of the swept lists, so nobody groups a sync
    // baseline under one particular link_delay slice.
    const bool async = c.scheduler != SchedulerKind::kSync;
    out << ',' << to_string(c.scheduler) << ','
        << (async ? format_double(c.period_jitter) : std::string()) << ','
        << (async ? format_double(c.link_delay) : std::string());
  }
  if (live_schema) {
    // Same discipline for the live knobs: empty cells on non-live rows.
    out << ',' << (c.protocol_live ? "true" : "false") << ','
        << (c.protocol_live ? std::string(to_string(c.topology_update))
                            : std::string())
        << ',';
    if (c.protocol_live) out << c.live_horizon;
  }
  if (verify_schema) {
    // And for the certification knobs: empty cells on non-verify rows.
    out << ',' << (c.verify_faults ? "true" : "false") << ','
        << (c.verify_faults
                ? std::string(verify::to_string(c.fault_class))
                : std::string())
        << ','
        << (c.verify_faults ? std::string(verify::to_string(c.daemon))
                            : std::string());
  }
  if (dirty_schema) {
    // Stepper cell: the mode on rows with a stepper seam, empty where
    // the axis is inapplicable (classic sync, certification trials).
    out << ','
        << (stepping_applies(c) ? std::string(to_string(c.stepping))
                                : std::string());
  }
  return out.str();
}

std::string config_json(const ScenarioConfig& c, bool extended,
                        bool live_schema, bool verify_schema,
                        bool dirty_schema) {
  std::ostringstream out = classic_stream();
  out << "\"topology\": \"" << to_string(c.topology) << "\", \"n\": " << c.n
      << ", \"radius\": " << format_double(c.radius) << ", \"variant\": \""
      << to_string(c.variant) << "\", \"mobility\": \""
      << to_string(c.mobility)
      << "\", \"speed_min\": " << format_double(c.speed_min)
      << ", \"speed_max\": " << format_double(c.speed_max)
      << ", \"tau\": " << format_double(c.tau)
      << ", \"churn_down\": " << format_double(c.churn_down)
      << ", \"churn_up\": " << format_double(c.churn_up)
      << ", \"steps\": " << c.steps
      << ", \"window_s\": " << format_double(c.window_s)
      << ", \"world_m\": " << format_double(c.world_m);
  if (extended) {
    out << ", \"scheduler\": \"" << to_string(c.scheduler) << '"';
    // As in the CSV: the async knobs are omitted for sync points.
    if (c.scheduler != SchedulerKind::kSync) {
      out << ", \"period_jitter\": " << format_double(c.period_jitter)
          << ", \"link_delay\": " << format_double(c.link_delay);
    }
  }
  if (live_schema) {
    out << ", \"protocol_live\": " << (c.protocol_live ? "true" : "false");
    if (c.protocol_live) {
      out << ", \"topology_update\": \"" << to_string(c.topology_update)
          << "\", \"live_horizon\": " << c.live_horizon;
    }
  }
  if (verify_schema) {
    out << ", \"verify_faults\": " << (c.verify_faults ? "true" : "false");
    if (c.verify_faults) {
      out << ", \"fault_class\": \"" << verify::to_string(c.fault_class)
          << "\", \"daemon\": \"" << verify::to_string(c.daemon) << '"';
    }
  }
  if (dirty_schema && stepping_applies(c)) {
    out << ", \"stepping\": \"" << to_string(c.stepping) << '"';
  }
  return out.str();
}

std::string summary_json(const MetricSummary& s) {
  std::ostringstream out = classic_stream();
  out << "{\"count\": " << s.count << ", \"mean\": " << format_double(s.mean)
      << ", \"stddev\": " << format_double(s.stddev)
      << ", \"p50\": " << format_double(s.p50)
      << ", \"p95\": " << format_double(s.p95)
      << ", \"min\": " << format_double(s.min)
      << ", \"max\": " << format_double(s.max) << "}";
  return out.str();
}

/// Compact human label for a grid point; fixed function of the config.
std::string short_label(const ScenarioConfig& c) {
  std::ostringstream out = classic_stream();
  out << to_string(c.topology) << " n=" << c.n << " r="
      << format_double(c.radius) << ' ' << to_string(c.variant);
  if (c.scheduler == SchedulerKind::kAsync) {
    out << " async d=" << format_double(c.link_delay) << "s";
  }
  if (c.protocol_live) {
    out << " live/"
        << (c.topology_update == TopologyUpdateKind::kIncremental ? "inc"
                                                                  : "rb");
  }
  if (c.verify_faults) {
    out << " verify/" << verify::to_string(c.fault_class) << '/'
        << verify::to_string(c.daemon);
  }
  if (stepping_applies(c) && c.stepping == SteppingKind::kDirty) {
    out << " dirty";
  }
  if (c.mobility != MobilityKind::kNone) {
    out << ' ' << (c.mobility == MobilityKind::kRandomDirection ? "rd" : "rwp")
        << ' ' << format_double(c.speed_min) << '-'
        << format_double(c.speed_max) << "m/s";
  }
  if (c.tau < 1.0) out << " tau=" << format_double(c.tau);
  if (c.churn_down > 0.0) out << " churn=" << format_double(c.churn_down);
  return out.str();
}

}  // namespace

bool plan_uses_async(const CampaignPlan& plan) noexcept {
  for (const auto& point : plan.grid) {
    if (point.config.scheduler != SchedulerKind::kSync) return true;
  }
  return false;
}

bool plan_uses_live(const CampaignPlan& plan) noexcept {
  for (const auto& point : plan.grid) {
    if (point.config.protocol_live) return true;
  }
  return false;
}

bool plan_uses_verify(const CampaignPlan& plan) noexcept {
  for (const auto& point : plan.grid) {
    if (point.config.verify_faults) return true;
  }
  return false;
}

bool plan_uses_dirty(const CampaignPlan& plan) noexcept {
  for (const auto& point : plan.grid) {
    if (stepping_applies(point.config) &&
        point.config.stepping == SteppingKind::kDirty) {
      return true;
    }
  }
  return false;
}

std::size_t report_metric_count(const CampaignPlan& plan) noexcept {
  if (plan_uses_verify(plan)) return kMetricNames.size();
  if (plan_uses_live(plan)) return kLiveMetricCount;
  return plan_uses_async(plan) ? kAsyncMetricCount : kSyncMetricCount;
}

void write_csv(std::ostream& out, const CampaignPlan& plan,
               const std::vector<ScenarioAggregate>& aggregates) {
  out.imbue(std::locale::classic());
  const bool extended = plan_uses_async(plan);
  const bool live_schema = plan_uses_live(plan);
  const bool verify_schema = plan_uses_verify(plan);
  const bool dirty_schema = plan_uses_dirty(plan);
  const std::size_t metric_count = report_metric_count(plan);
  out << "campaign,topology,n,radius,variant,mobility,speed_min,speed_max,"
         "tau,churn_down,churn_up,steps,window_s,world_m,";
  if (extended) out << "scheduler,period_jitter,link_delay,";
  if (live_schema) out << "protocol_live,topology_update,live_horizon,";
  if (verify_schema) out << "verify_faults,fault_class,daemon,";
  if (dirty_schema) out << "stepping,";
  out << "metric,count,mean,stddev,p50,p95,min,max\n";
  for (const auto& aggregate : aggregates) {
    const auto& config = plan.grid[aggregate.grid_index].config;
    const std::string fields = config_fields_csv(
        config, extended, live_schema, verify_schema, dirty_schema);
    // Only metrics the run actually measured (see metric_applies): no
    // fabricated converge_time=0 for sync points, no fabricated
    // delta=0 for async points.
    const bool async_point = config.scheduler != SchedulerKind::kSync;
    for (std::size_t m = 0; m < metric_count; ++m) {
      if (!metric_applies(m, async_point, config.protocol_live,
                          config.verify_faults)) {
        continue;
      }
      const MetricSummary& s = aggregate.metrics[m];
      out << plan.name << ',' << fields << ',' << kMetricNames[m] << ','
          << s.count << ',' << format_double(s.mean) << ','
          << format_double(s.stddev) << ',' << format_double(s.p50) << ','
          << format_double(s.p95) << ',' << format_double(s.min) << ','
          << format_double(s.max) << '\n';
    }
  }
}

void write_json(std::ostream& out, const CampaignPlan& plan,
                const std::vector<ScenarioAggregate>& aggregates) {
  out.imbue(std::locale::classic());
  const bool extended = plan_uses_async(plan);
  const bool live_schema = plan_uses_live(plan);
  const bool verify_schema = plan_uses_verify(plan);
  const bool dirty_schema = plan_uses_dirty(plan);
  const std::size_t metric_count = report_metric_count(plan);
  std::string name;
  append_escaped_json(name, plan.name);
  out << "{\n  \"campaign\": \"" << name << "\",\n  \"seed_base\": "
      << plan.seed_base << ",\n  \"replications\": " << plan.replications
      << ",\n  \"scenarios\": [";
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    const auto& aggregate = aggregates[i];
    const auto& config = plan.grid[aggregate.grid_index].config;
    out << (i == 0 ? "\n" : ",\n") << "    {"
        << config_json(config, extended, live_schema, verify_schema,
                       dirty_schema)
        << ", \"metrics\": {";
    // As in write_csv: only the metrics this run actually measured.
    const bool async_point = config.scheduler != SchedulerKind::kSync;
    bool first = true;
    for (std::size_t m = 0; m < metric_count; ++m) {
      if (!metric_applies(m, async_point, config.protocol_live,
                          config.verify_faults)) {
        continue;
      }
      out << (first ? "" : ", ") << '"' << kMetricNames[m]
          << "\": " << summary_json(aggregate.metrics[m]);
      first = false;
    }
    out << "}}";
  }
  out << "\n  ]\n}\n";
}

util::Table summary_table(const CampaignPlan& plan,
                          const std::vector<ScenarioAggregate>& aggregates) {
  util::Table table("Campaign '" + plan.name + "' — " +
                    std::to_string(plan.grid.size()) + " scenario(s) x " +
                    std::to_string(plan.replications) + " replication(s)");
  const bool extended = plan_uses_async(plan);
  const bool live = plan_uses_live(plan);
  const bool verify = plan_uses_verify(plan);
  if (verify) {
    table.header({"scenario", "pass rate", "clusters", "async t(s)",
                  "async msgs", "sync steps", "sync msgs"});
  } else if (live) {
    table.header({"scenario", "stability", "clusters", "conv t(s)", "msgs",
                  "reconv t(s)", "re-msgs"});
  } else if (extended) {
    table.header({"scenario", "stability", "delta", "reaffil", "clusters",
                  "conv t(s)", "msgs"});
  } else {
    table.header({"scenario", "stability", "delta", "reaffil", "clusters",
                  "p95 stab"});
  }
  for (const auto& aggregate : aggregates) {
    const auto& config = plan.grid[aggregate.grid_index].config;
    const bool async = config.scheduler != SchedulerKind::kSync;
    const bool live_point = config.protocol_live;
    if (verify) {
      const bool verify_point = config.verify_faults;
      table.row(
          {short_label(config),
           util::Table::num(aggregate.stability().mean, 3) + " ±" +
               util::Table::num(aggregate.stability().stddev, 3),
           util::Table::num(aggregate.cluster_count().mean, 1),
           verify_point
               ? util::Table::num(aggregate.converge_time().mean, 2)
               : std::string("-"),
           verify_point ? util::Table::num(aggregate.messages().mean, 0)
                        : std::string("-"),
           verify_point
               ? util::Table::num(aggregate.sync_converge_steps().mean, 1)
               : std::string("-"),
           verify_point
               ? util::Table::num(aggregate.sync_messages().mean, 0)
               : std::string("-")});
      continue;
    }
    if (live) {
      const bool conv = async || live_point;
      table.row(
          {short_label(config),
           util::Table::num(aggregate.stability().mean, 3) + " ±" +
               util::Table::num(aggregate.stability().stddev, 3),
           util::Table::num(aggregate.cluster_count().mean, 1),
           conv ? util::Table::num(aggregate.converge_time().mean, 2)
                : std::string("-"),
           conv ? util::Table::num(aggregate.messages().mean, 0)
                : std::string("-"),
           live_point ? util::Table::num(aggregate.reconverge_time().mean, 2)
                      : std::string("-"),
           live_point
               ? util::Table::num(aggregate.reconverge_messages().mean, 0)
               : std::string("-")});
      continue;
    }
    std::vector<std::string> row{
        short_label(config),
        util::Table::num(aggregate.stability().mean, 3) + " ±" +
            util::Table::num(aggregate.stability().stddev, 3),
        async ? std::string("-") : util::Table::num(aggregate.delta().mean, 3),
        async ? std::string("-")
              : util::Table::num(aggregate.reaffiliation().mean, 3),
        util::Table::num(aggregate.cluster_count().mean, 1)};
    if (extended) {
      row.push_back(async ? util::Table::num(aggregate.converge_time().mean, 2)
                          : std::string("-"));
      row.push_back(async ? util::Table::num(aggregate.messages().mean, 0)
                          : std::string("-"));
    } else {
      row.push_back(util::Table::num(aggregate.stability().p95, 3));
    }
    table.row(std::move(row));
  }
  if (verify) {
    table.note(
        "pass rate = fraction of certification trials in which BOTH "
        "engines reached and held a legitimate configuration and agreed; "
        "async t / msgs = event-engine convergence (virtual s, "
        "deliveries); sync steps / msgs = lockstep-engine convergence");
  } else if (live) {
    table.note(
        "stability = fraction of perturbations re-converged (live rows) or "
        "converged fraction (async); conv t / msgs = cold-start convergence; "
        "reconv t / re-msgs = mean per-perturbation re-convergence time "
        "(virtual s) and messages, live rows only");
  } else {
    table.note(extended
                   ? "stability = head re-election ratio (sync) or converged "
                     "fraction (async); conv t / msgs = virtual convergence "
                     "time and messages-to-convergence, async rows only"
                   : "stability = head re-election ratio per window; delta = "
                     "fraction of nodes changing cluster; reaffil = fraction "
                     "changing parent");
  }
  return table;
}

}  // namespace ssmwn::campaign
