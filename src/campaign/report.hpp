// Campaign result writers: CSV, JSON, and a console table.
//
// Both machine formats are fully deterministic: fixed column/key order,
// fixed number formatting (shortest round-trip-exact decimal), no
// timestamps or environment echoes. Running the same plan twice — or on
// a different thread count — must produce byte-identical files; the
// replay test diffs these writers' output to enforce that.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/spec.hpp"
#include "util/table.hpp"

namespace ssmwn::campaign {

/// One row per (grid point, metric): the scenario's full configuration,
/// the metric name, and its summary statistics.
void write_csv(std::ostream& out, const CampaignPlan& plan,
               const std::vector<ScenarioAggregate>& aggregates);

/// Single JSON document: campaign header plus a `scenarios` array with
/// each grid point's configuration and metric summaries.
void write_json(std::ostream& out, const CampaignPlan& plan,
                const std::vector<ScenarioAggregate>& aggregates);

/// Human-oriented summary: one row per grid point, headline metrics only.
[[nodiscard]] util::Table summary_table(
    const CampaignPlan& plan,
    const std::vector<ScenarioAggregate>& aggregates);

}  // namespace ssmwn::campaign
