// Campaign result writers: CSV, JSON, and a console table.
//
// Both machine formats are fully deterministic: fixed column/key order,
// fixed number formatting (shortest round-trip-exact decimal, via
// std::to_chars — immune to LC_NUMERIC; the writers additionally pin
// the classic locale on their streams so integer grouping can't leak in
// either), no timestamps or environment echoes. Running the same plan
// twice — or on a different thread count, or under a different locale —
// must produce byte-identical files; the replay test diffs these
// writers' output to enforce that.
//
// Schema versioning: a plan whose grid is purely synchronous is written
// in the legacy schema (the exact columns/keys/metric rows of PR 2), so
// pre-existing campaigns replay byte-identically across the release
// that introduced the execution-engine axis. A plan containing any
// async grid point gets the extended schema: three more config columns
// (scheduler, period_jitter, link_delay — the knob cells are empty for
// sync rows, which the knobs don't apply to) and two more metric names
// (converge_time, messages). Each row set carries only the metrics its
// engine measured (see aggregate.hpp's metric_applies): sync points
// keep stability/delta/reaffiliation/cluster_count, async points get
// stability/cluster_count/converge_time/messages — never a fabricated
// zero that would be indistinguishable from a measurement. The schema
// choice is a pure function of the plan, never of the environment.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/spec.hpp"
#include "util/table.hpp"

namespace ssmwn::campaign {

/// True iff any grid point runs on the event-driven engine — the
/// extended-schema trigger described in the header comment.
[[nodiscard]] bool plan_uses_async(const CampaignPlan& plan) noexcept;

/// True iff any grid point is a live (protocol-under-mobility) run —
/// triggers the live schema extension: three more config columns
/// (protocol_live, topology_update, live_horizon — the knob cells empty
/// for non-live rows) and the reconverge_time / reconverge_messages
/// metric rows. Plans without live points keep their previous schema
/// byte-for-byte, exactly as sync-only plans keep the legacy one.
[[nodiscard]] bool plan_uses_live(const CampaignPlan& plan) noexcept;

/// True iff any grid point is a certification trial (verify_faults) —
/// triggers the verify schema extension: three more config columns
/// (verify_faults, fault_class, daemon — knob cells empty for
/// non-verify rows) and the sync_converge_steps / sync_messages metric
/// rows. Plans without verify points keep their previous schema
/// byte-for-byte, same release-boundary discipline as the live axis.
[[nodiscard]] bool plan_uses_verify(const CampaignPlan& plan) noexcept;

/// True iff any grid point runs the quiescence-aware dirty stepper
/// (stepping_applies && stepping == kDirty) — triggers the dirty schema
/// extension: one more config column/key (`stepping`, the cell empty /
/// key omitted on points without a stepper). Plans that never flip the
/// axis keep their previous schema byte-for-byte, same release-boundary
/// discipline as every prior axis. The stepper changes *cost only* —
/// never results — so no new metric rows come with it.
[[nodiscard]] bool plan_uses_dirty(const CampaignPlan& plan) noexcept;

/// Number of metric rows the writers emit per grid point:
/// kSyncMetricCount for a purely synchronous plan, kAsyncMetricCount
/// with the async axis, kLiveMetricCount with live points,
/// kMetricNames.size() with verify points.
[[nodiscard]] std::size_t report_metric_count(
    const CampaignPlan& plan) noexcept;

/// One row per (grid point, metric): the scenario's full configuration,
/// the metric name, and its summary statistics.
void write_csv(std::ostream& out, const CampaignPlan& plan,
               const std::vector<ScenarioAggregate>& aggregates);

/// Single JSON document: campaign header plus a `scenarios` array with
/// each grid point's configuration and metric summaries.
void write_json(std::ostream& out, const CampaignPlan& plan,
                const std::vector<ScenarioAggregate>& aggregates);

/// Human-oriented summary: one row per grid point, headline metrics only.
[[nodiscard]] util::Table summary_table(
    const CampaignPlan& plan,
    const std::vector<ScenarioAggregate>& aggregates);

}  // namespace ssmwn::campaign
