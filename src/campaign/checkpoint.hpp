// Deterministic campaign checkpoints: exact resume of a killed sweep.
//
// A checkpoint is a sidecar file recording which plan slots have
// finished and their exact RunMetrics. Because every run is a pure
// function of (grid config, seed) and results land in plan-indexed
// slots, resuming is trivial *and exact*: skip the completed slots,
// execute the rest, and the final result vector — hence the aggregated
// CSV/JSON — is byte-identical to an uninterrupted run at any thread
// count. Two details make that true:
//
//   * Doubles are stored as their raw IEEE-754 bit patterns (hex u64),
//     never as decimal text, so a metric that crossed a checkpoint
//     boundary is restored to the exact bits the run produced.
//   * The file names the plan it belongs to by a fingerprint over the
//     campaign identity (name, seed_base, replications, every grid
//     point's canonical string). Resuming against a different or edited
//     spec fails loudly (CheckpointError → CLI exit 2) before any run
//     executes; a silently mismatched resume would splice two
//     experiments into one output file.
//
// Checkpoints are published with util::AtomicFile (write temp, fsync,
// rename), so a crash mid-checkpoint leaves the previous complete
// checkpoint in place — the file on disk is always loadable. A torn or
// truncated file (possible only through external interference, or a
// filesystem without atomic rename) is rejected by a whole-body
// checksum in the footer.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace ssmwn::campaign {

/// Unusable checkpoint: wrong campaign, truncated body, bad checksum,
/// unreadable file. Derives from std::invalid_argument so the CLI maps
/// it to the bad-arguments exit code (2) — resuming must abort before
/// any run executes, like every other precondition failure.
class CheckpointError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Completed-slot state loaded from (or about to be written to) a
/// checkpoint. `completed` and `results` are indexed like plan.runs;
/// `results[i]` is meaningful only where `completed[i]` is nonzero.
struct CheckpointState {
  std::vector<char> completed;
  std::vector<RunMetrics> results;

  [[nodiscard]] std::size_t completed_count() const noexcept {
    std::size_t count = 0;
    for (const char flag : completed) count += flag != 0;
    return count;
  }
};

/// Order-sensitive fingerprint of the campaign identity: name,
/// seed_base, replications, run count, and every grid point's canonical
/// string. Any change that could alter a run's config or seed — an
/// edited axis, a different seed_base, a reordered grid — changes the
/// fingerprint; execution knobs (--threads, --shards) do not, exactly
/// as they never change results.
[[nodiscard]] std::uint64_t plan_fingerprint(const CampaignPlan& plan);

/// Serializes the completed slots to `path` via temp-file + fsync +
/// atomic rename. Throws std::invalid_argument if the path is
/// unwritable, std::runtime_error if publication fails mid-commit (the
/// previous checkpoint, if any, survives either way).
void write_checkpoint(const std::string& path, const CampaignPlan& plan,
                      const CheckpointState& state);

/// Loads and validates a checkpoint against `plan`. Throws
/// CheckpointError on any mismatch: unreadable file, wrong magic or
/// version, fingerprint not matching the plan, slot index out of range,
/// duplicate slots, short read, or a body that fails the footer
/// checksum.
[[nodiscard]] CheckpointState load_checkpoint(const std::string& path,
                                              const CampaignPlan& plan);

}  // namespace ssmwn::campaign
