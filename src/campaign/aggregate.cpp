#include "campaign/aggregate.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace ssmwn::campaign {

MetricsAggregator::MetricsAggregator(std::size_t grid_count)
    : samples_(grid_count) {}

void MetricsAggregator::add(std::size_t grid_index, const RunMetrics& m) {
  if (grid_index >= samples_.size()) {
    throw std::out_of_range("MetricsAggregator: grid index out of range");
  }
  auto& cell = samples_[grid_index];
  cell[0].push_back(m.stability);
  cell[1].push_back(m.delta);
  cell[2].push_back(m.reaffiliation);
  cell[3].push_back(m.cluster_count);
  cell[4].push_back(m.converge_time);
  cell[5].push_back(m.messages);
  cell[6].push_back(m.reconverge_time);
  cell[7].push_back(m.reconverge_messages);
  cell[8].push_back(m.sync_steps);
  cell[9].push_back(m.sync_messages);
}

std::vector<ScenarioAggregate> MetricsAggregator::summarize() const {
  std::vector<ScenarioAggregate> out;
  out.reserve(samples_.size());
  for (std::size_t g = 0; g < samples_.size(); ++g) {
    ScenarioAggregate aggregate;
    aggregate.grid_index = g;
    for (std::size_t m = 0; m < kMetricNames.size(); ++m) {
      const auto& sample = samples_[g][m];
      util::RunningStats stats;
      for (const double x : sample) stats.add(x);
      MetricSummary& summary = aggregate.metrics[m];
      summary.count = stats.count();
      summary.mean = stats.mean();
      summary.stddev = stats.stddev();
      summary.p50 = util::percentile(sample, 0.5);
      summary.p95 = util::percentile(sample, 0.95);
      summary.min = stats.min();
      summary.max = stats.max();
    }
    out.push_back(aggregate);
  }
  return out;
}

}  // namespace ssmwn::campaign
