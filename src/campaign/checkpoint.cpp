#include "campaign/checkpoint.hpp"

#include <array>
#include <charconv>
#include <cstring>
#include <fstream>
#include <locale>
#include <sstream>
#include <string_view>

#include "util/atomic_file.hpp"

namespace ssmwn::campaign {

namespace {

constexpr std::string_view kMagic = "ssmwn-checkpoint v1";

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void fnv_string(std::uint64_t& h, std::string_view text) {
  fnv_bytes(h, text.data(), text.size());
  h ^= 0xffu;  // length-prefix-free separator so "ab","c" != "a","bc"
  h *= kFnvPrime;
}

void fnv_u64(std::uint64_t& h, std::uint64_t value) {
  fnv_bytes(h, &value, sizeof(value));
}

std::string hex_u64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xfu];
    value >>= 4;
  }
  return out;
}

std::uint64_t parse_hex_u64(std::string_view text, const char* what) {
  std::uint64_t value = 0;
  if (text.empty() || text.size() > 16) {
    throw CheckpointError(std::string("checkpoint: malformed ") + what);
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw CheckpointError(std::string("checkpoint: malformed ") + what);
  }
  return value;
}

std::uint64_t parse_dec_u64(std::string_view text, const char* what) {
  std::uint64_t value = 0;
  if (text.empty()) {
    throw CheckpointError(std::string("checkpoint: malformed ") + what);
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw CheckpointError(std::string("checkpoint: malformed ") + what);
  }
  return value;
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// Metric field order inside a checkpoint record. Append-only: inserting
// a field mid-list would silently reinterpret old files, so any schema
// change must bump the magic's version instead.
std::array<double RunMetrics::*, 10> metric_fields() {
  return {
      &RunMetrics::stability,          &RunMetrics::delta,
      &RunMetrics::reaffiliation,      &RunMetrics::cluster_count,
      &RunMetrics::converge_time,      &RunMetrics::messages,
      &RunMetrics::reconverge_time,    &RunMetrics::reconverge_messages,
      &RunMetrics::sync_steps,         &RunMetrics::sync_messages,
  };
}

}  // namespace

std::uint64_t plan_fingerprint(const CampaignPlan& plan) {
  std::uint64_t h = kFnvOffset;
  fnv_string(h, plan.name);
  fnv_u64(h, plan.seed_base);
  fnv_u64(h, plan.replications);
  fnv_u64(h, plan.runs.size());
  for (const auto& point : plan.grid) fnv_string(h, point.canonical);
  return h;
}

void write_checkpoint(const std::string& path, const CampaignPlan& plan,
                      const CheckpointState& state) {
  std::ostringstream body;
  body.imbue(std::locale::classic());
  body << kMagic << '\n';
  body << "campaign " << plan.name << '\n';
  body << "spec_hash " << hex_u64(plan_fingerprint(plan)) << '\n';
  body << "runs " << plan.runs.size() << '\n';
  body << "completed " << state.completed_count() << '\n';
  const auto fields = metric_fields();
  for (std::size_t i = 0; i < state.completed.size(); ++i) {
    if (state.completed[i] == 0) continue;
    const RunMetrics& m = state.results[i];
    body << "run " << i << ' ' << m.windows;
    for (const auto field : fields) body << ' ' << hex_u64(double_bits(m.*field));
    body << '\n';
  }
  std::string text = body.str();
  std::uint64_t checksum = kFnvOffset;
  fnv_bytes(checksum, text.data(), text.size());
  text += "checksum " + hex_u64(checksum) + "\n";

  util::AtomicFile file(path);
  file.stream().write(text.data(), static_cast<std::streamsize>(text.size()));
  file.commit();
}

CheckpointState load_checkpoint(const std::string& path,
                                const CampaignPlan& plan) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("checkpoint: cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) {
    throw CheckpointError("checkpoint: read error on '" + path + "'");
  }
  const std::string text = buffer.str();

  // Split off the footer first and verify the checksum over everything
  // before it; only then is any field trusted.
  const auto footer_pos = text.rfind("checksum ");
  if (footer_pos == std::string::npos || footer_pos == 0 ||
      text[footer_pos - 1] != '\n' || text.back() != '\n') {
    throw CheckpointError("checkpoint: truncated file '" + path +
                          "' (missing checksum footer)");
  }
  const std::string_view body(text.data(), footer_pos);
  const std::string_view footer_line(text.data() + footer_pos,
                                     text.size() - footer_pos - 1);
  const std::uint64_t stored =
      parse_hex_u64(footer_line.substr(std::string_view("checksum ").size()),
                    "checksum footer");
  std::uint64_t checksum = kFnvOffset;
  fnv_bytes(checksum, body.data(), body.size());
  if (checksum != stored) {
    throw CheckpointError("checkpoint: checksum mismatch in '" + path +
                          "' (torn or corrupted file)");
  }

  // Line-walk the verified body.
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start < body.size()) {
    const auto nl = body.find('\n', start);
    if (nl == std::string_view::npos) {
      throw CheckpointError("checkpoint: truncated body in '" + path + "'");
    }
    lines.push_back(body.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.size() < 5) {
    throw CheckpointError("checkpoint: truncated header in '" + path + "'");
  }
  auto expect_prefix = [&](std::string_view line, std::string_view prefix,
                           const char* what) -> std::string_view {
    if (line.substr(0, prefix.size()) != prefix) {
      throw CheckpointError(std::string("checkpoint: malformed ") + what +
                            " in '" + path + "'");
    }
    return line.substr(prefix.size());
  };
  if (lines[0] != kMagic) {
    throw CheckpointError("checkpoint: '" + path +
                          "' is not a ssmwn-checkpoint v1 file");
  }
  const auto name = expect_prefix(lines[1], "campaign ", "campaign line");
  const auto hash_text = expect_prefix(lines[2], "spec_hash ", "spec_hash line");
  const auto runs_text = expect_prefix(lines[3], "runs ", "runs line");
  const auto completed_text =
      expect_prefix(lines[4], "completed ", "completed line");

  const std::uint64_t fingerprint = plan_fingerprint(plan);
  if (parse_hex_u64(hash_text, "spec_hash") != fingerprint ||
      name != plan.name) {
    throw CheckpointError(
        "checkpoint: '" + path + "' was written for campaign '" +
        std::string(name) +
        "' with a different spec; refusing to resume (spec hash mismatch)");
  }
  const std::uint64_t runs = parse_dec_u64(runs_text, "runs count");
  if (runs != plan.runs.size()) {
    throw CheckpointError("checkpoint: run count mismatch in '" + path + "'");
  }
  const std::uint64_t completed = parse_dec_u64(completed_text, "completed count");

  CheckpointState state;
  state.completed.assign(plan.runs.size(), 0);
  state.results.assign(plan.runs.size(), RunMetrics{});
  const auto fields = metric_fields();
  std::size_t seen = 0;
  for (std::size_t li = 5; li < lines.size(); ++li) {
    std::string_view line = lines[li];
    line = expect_prefix(line, "run ", "run record");
    // Tokenize: index, windows, then the 10 metric bit patterns.
    std::array<std::string_view, 12> tokens;
    std::size_t count = 0;
    std::size_t pos = 0;
    while (pos < line.size() && count < tokens.size()) {
      const auto space = line.find(' ', pos);
      const auto end = space == std::string_view::npos ? line.size() : space;
      tokens[count++] = line.substr(pos, end - pos);
      pos = end + 1;
    }
    if (count != tokens.size() || pos <= line.size()) {
      throw CheckpointError("checkpoint: malformed run record in '" + path +
                            "'");
    }
    const std::uint64_t index = parse_dec_u64(tokens[0], "run index");
    if (index >= plan.runs.size()) {
      throw CheckpointError("checkpoint: run index out of range in '" + path +
                            "'");
    }
    if (state.completed[index] != 0) {
      throw CheckpointError("checkpoint: duplicate run record in '" + path +
                            "'");
    }
    RunMetrics m{};
    m.windows =
        static_cast<std::size_t>(parse_dec_u64(tokens[1], "windows count"));
    for (std::size_t f = 0; f < fields.size(); ++f) {
      m.*fields[f] = bits_double(parse_hex_u64(tokens[2 + f], "metric bits"));
    }
    state.completed[index] = 1;
    state.results[index] = m;
    ++seen;
  }
  if (seen != completed) {
    throw CheckpointError("checkpoint: completed count mismatch in '" + path +
                          "' (short read?)");
  }
  return state;
}

}  // namespace ssmwn::campaign
