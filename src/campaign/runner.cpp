#include "campaign/runner.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>

#include "campaign/checkpoint.hpp"

#include "core/dag_ids.hpp"
#include "core/legitimacy.hpp"
#include "core/protocol.hpp"
#include "graph/dynamic.hpp"
#include "graph/graph.hpp"
#include "metrics/delta.hpp"
#include "metrics/stability.hpp"
#include "mobility/mobility.hpp"
#include "sim/async_network.hpp"
#include "sim/churn.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "sim/parallel.hpp"
#include "sim/sharded_network.hpp"
#include "stabilize/convergence.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/incremental.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "verify/certifier.hpp"

namespace ssmwn::campaign {

namespace {

core::ClusterOptions variant_options(Variant variant) noexcept {
  switch (variant) {
    case Variant::kBasic: return core::ClusterOptions::basic();
    case Variant::kDag: return core::ClusterOptions::with_dag();
    case Variant::kImproved: return core::ClusterOptions::improved();
    case Variant::kFull: return core::ClusterOptions::full();
  }
  return {};
}

/// One async run: play the distributed protocol on the event-driven
/// engine (randomized daemon, per-link delays) from an adversarial
/// initial state, against the topology the grid point describes, and
/// measure virtual-time convergence to a legitimate configuration plus
/// the messages it took. `tau < 1` becomes per-delivery Bernoulli loss.
RunMetrics execute_async_run(const ScenarioConfig& config,
                             const topology::IdAssignment& ids,
                             util::Rng& rng, RunWorkspace& ws) {
  // One independent sub-stream per stochastic component, split in a
  // fixed order so adding one never perturbs the others.
  util::Rng protocol_rng = rng.split();
  util::Rng loss_rng = rng.split();
  util::Rng engine_rng = rng.split();
  util::Rng chaos_rng = rng.split();

  const graph::Graph g = topology::unit_disk_graph(ws.points, config.radius);

  core::ProtocolConfig pconfig;
  pconfig.cluster = variant_options(config.variant);
  pconfig.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  pconfig.cache_max_age = config.tau < 1.0 ? 16 : 8;
  core::DensityProtocol protocol(ids, pconfig, protocol_rng);
  // "From an arbitrary initial state": scramble every shared variable
  // and stuff the caches with garbage before the first event fires.
  protocol.corrupt_all(chaos_rng);

  const auto medium = sim::make_loss_model(config.tau, loss_rng);

  sim::AsyncConfig async;
  async.period_s = config.window_s;  // one "window" = one mean period
  async.period_jitter = config.period_jitter;
  async.link_delay_s = config.link_delay;
  async.daemon = sim::DaemonKind::kRandomized;
  sim::AsyncNetwork network(g, protocol, *medium, async, engine_rng);
  if (config.stepping == SteppingKind::kDirty) {
    network.set_stepping(sim::Stepping::kDirty);
  }

  // Shared legitimacy definition (core/legitimacy.hpp): exact oracle
  // match only when head identity is a pure function of the topology.
  const bool exact = core::head_identity_is_deterministic(pconfig.cluster);
  core::ClusteringResult oracle;
  if (exact) oracle = core::cluster_density(g, ids, pconfig.cluster);
  core::LegitimacyCheck legitimacy(g, protocol, exact ? &oracle : nullptr);

  const auto report = sim::settle_async(
      network, [&] { return legitimacy.check(); },
      /*horizon_periods=*/static_cast<double>(config.steps));

  RunMetrics out;
  out.stability = report.converged ? 1.0 : 0.0;
  out.delta = 0.0;
  out.reaffiliation = 0.0;
  std::size_t heads = 0;
  for (const char flag : protocol.head_flags()) heads += flag != 0;
  out.cluster_count = static_cast<double>(heads);
  out.converge_time = report.converged ? report.stabilization_time_s
                                       : report.time_simulated_s;
  out.messages = static_cast<double>(report.converged
                                         ? report.messages_to_converge
                                         : report.messages_total);
  out.windows = report.checks;
  return out;
}

/// Shared per-node mobility factory (live + classic sync paths draw the
/// same way, so the models stay interchangeable between modes).
std::unique_ptr<mobility::MobilityModel> make_mover(
    const ScenarioConfig& config, std::size_t n, util::Rng rng) {
  const mobility::SpeedRange speeds{config.speed_min, config.speed_max};
  switch (config.mobility) {
    case MobilityKind::kNone:
      return nullptr;
    case MobilityKind::kRandomDirection:
      return std::make_unique<mobility::RandomDirection>(n, speeds,
                                                         config.world_m, rng);
    case MobilityKind::kRandomWaypoint:
      return std::make_unique<mobility::RandomWaypoint>(n, speeds,
                                                        config.world_m, rng);
  }
  return nullptr;
}

/// One protocol-under-mobility run: the distributed protocol executes
/// continuously (on either engine) while mobility and churn evolve the
/// topology; every `window_s` of movement is one *perturbation*, and the
/// run records how long (virtual seconds) and how many frame deliveries
/// each perturbation needed to re-reach a legitimate configuration.
/// `topology_update` selects how change reaches the runtime: incremental
/// edge deltas with eager stale-link invalidation, or full rebuilds the
/// protocol discovers only through its own cache aging.
RunMetrics execute_live_run(const ScenarioConfig& config,
                            const topology::IdAssignment& ids,
                            util::Rng& rng, RunWorkspace& ws,
                            const ExecutionOptions& exec) {
  // Fixed split order (see execute_async_run).
  util::Rng protocol_rng = rng.split();
  util::Rng loss_rng = rng.split();
  util::Rng engine_rng = rng.split();
  util::Rng chaos_rng = rng.split();
  util::Rng mobility_rng = rng.split();
  util::Rng churn_rng = rng.split();

  const std::size_t n = ws.points.size();
  auto mover = make_mover(config, n, mobility_rng);
  std::optional<sim::NodeChurn> churn;
  if (config.churn_down > 0.0) {
    churn.emplace(n, config.churn_down, config.churn_up, churn_rng);
  }
  const auto alive_span = [&]() -> std::span<const char> {
    if (!churn) return {};
    return {churn->alive().data(), churn->alive().size()};
  };

  // Topology holder. Both modes keep ONE Graph object alive for the
  // whole run (the engines hold a reference to it): incremental patches
  // it via edge deltas, rebuild move-assigns a fresh build into it.
  const bool incremental =
      config.topology_update == TopologyUpdateKind::kIncremental;
  std::optional<topology::LiveTopology> live;
  graph::DynamicGraph rebuilt;
  auto rebuild_graph = [&] {
    graph::Graph g = topology::unit_disk_graph(ws.points, config.radius);
    if (churn) g = sim::mask_nodes(g, alive_span());
    rebuilt.reset(std::move(g));
  };
  if (incremental) {
    live.emplace(ws.points, config.radius, alive_span());
  } else {
    rebuild_graph();
  }
  const graph::Graph& g = incremental ? live->graph() : rebuilt.view();

  core::ProtocolConfig pconfig;
  pconfig.cluster = variant_options(config.variant);
  pconfig.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  pconfig.cache_max_age = config.tau < 1.0 ? 16 : 8;
  core::DensityProtocol protocol(ids, pconfig, protocol_rng);
  protocol.corrupt_all(chaos_rng);
  const auto medium = sim::make_loss_model(config.tau, loss_rng);

  const bool exact = core::head_identity_is_deterministic(pconfig.cluster);
  core::ClusteringResult oracle;
  auto recompute_oracle = [&] {
    if (exact) oracle = core::cluster_density(g, ids, pconfig.cluster);
  };
  recompute_oracle();
  core::LegitimacyCheck legitimacy(g, protocol, exact ? &oracle : nullptr);

  const double horizon_s =
      static_cast<double>(config.live_horizon) * config.window_s;
  const double confirm_s = 3.0 * config.window_s;

  util::RunningStats reconv_time, reconv_messages, clusters;
  std::size_t reconverged = 0;
  auto count_heads = [&protocol] {
    std::size_t heads = 0;
    for (const char flag : protocol.head_flags()) heads += flag != 0;
    return static_cast<double>(heads);
  };
  auto record_window = [&](const stabilize::VirtualTimeReport& report,
                           double window_start_s) {
    reconverged += report.converged;
    reconv_time.add((report.converged ? report.stabilization_time_s
                                      : report.time_simulated_s) -
                    window_start_s);
    reconv_messages.add(static_cast<double>(
        report.converged ? report.messages_to_converge
                         : report.messages_total));
    clusters.add(count_heads());
  };

  RunMetrics out;
  const bool dirty = config.stepping == SteppingKind::kDirty;
  if (config.scheduler == SchedulerKind::kSync) {
    // Generic over the two sync engines: sim::Network and
    // sim::ShardedNetwork expose the same stepping surface and are
    // bit-identical, so the shard knob swaps the type without touching
    // the run logic (or the results).
    auto drive_sync = [&](auto& network) {
      // expand() rejects dirty+sync with tau < 1, so this never throws.
      if (dirty) network.set_stepping(sim::Stepping::kDirty);
      // Unified units with the async engine: one synchronous step is one
      // broadcast round ≈ one window_s of virtual time.
      auto settle = [&] {
        legitimacy.reset();
        std::size_t rounds = 0;
        const std::uint64_t base = network.messages_delivered();
        return stabilize::run_until_stable_virtual(
            [&] {
              network.step();
              return static_cast<double>(++rounds) * config.window_s;
            },
            [&] { return network.messages_delivered() - base; },
            [&] { return legitimacy.check(); }, confirm_s, horizon_s);
      };

      const auto cold = settle();
      out.converge_time =
          cold.converged ? cold.stabilization_time_s : cold.time_simulated_s;
      out.messages = static_cast<double>(
          cold.converged ? cold.messages_to_converge : cold.messages_total);

      for (std::size_t window = 0; window < config.steps; ++window) {
        if (mover) mover->step(ws.points, config.window_s);
        if (churn) churn->step();
        if (incremental) {
          // apply_topology_delta also wakes the closed neighborhood of
          // every delta endpoint under dirty stepping, so quiescent nodes
          // near a change re-run their rules next step.
          network.apply_topology_delta(live->update(ws.points, alive_span()));
        } else {
          // Rebuild mode mutates the Graph in place with no delta, so
          // re-announce it: under dirty stepping quiescent nodes would
          // never learn of the change (set_graph wakes every node), and
          // the sharded engine caches boundary-sender lists it must
          // rebuild. For the unsharded full stepper this is a no-op.
          rebuild_graph();
          network.set_graph(g);
        }
        recompute_oracle();
        record_window(settle(), 0.0);
      }
    };
    if (exec.shards >= 2) {
      sim::ShardedNetwork network(g, protocol, *medium, exec.shards, 1);
      drive_sync(network);
    } else {
      sim::Network network(g, protocol, *medium, 1);
      drive_sync(network);
    }
  } else {
    sim::AsyncConfig async;
    async.period_s = config.window_s;
    async.period_jitter = config.period_jitter;
    async.link_delay_s = config.link_delay;
    async.daemon = sim::DaemonKind::kRandomized;
    sim::AsyncNetwork network(g, protocol, *medium, async, engine_rng);
    // Safe under both topology-update modes: the async skip decision
    // reads only protocol cache state, never adjacency.
    if (dirty) network.set_stepping(sim::Stepping::kDirty);
    auto settle = [&] {
      legitimacy.reset();
      return sim::settle_async(
          network, [&] { return legitimacy.check(); },
          static_cast<double>(config.live_horizon));
    };

    const auto cold = settle();
    out.converge_time =
        cold.converged ? cold.stabilization_time_s : cold.time_simulated_s;
    out.messages = static_cast<double>(
        cold.converged ? cold.messages_to_converge : cold.messages_total);

    // Mobility advances one window_s of *movement* per perturbation; the
    // network clock between perturbations is whatever the settle took.
    graph::EdgeDelta no_delta;  // rebuild mode applies without a delta
    for (std::size_t window = 0; window < config.steps; ++window) {
      if (mover) mover->step(ws.points, config.window_s);
      if (churn) churn->step();
      network.schedule_topology_update(
          network.now(), [&]() -> const graph::EdgeDelta& {
            if (incremental) return live->update(ws.points, alive_span());
            rebuild_graph();
            return no_delta;
          });
      // Fire the perturbation now so the oracle sees the new graph.
      network.run_until(network.now());
      const double window_start_s = network.now_seconds();
      recompute_oracle();
      record_window(settle(), window_start_s);
    }
  }

  out.stability = config.steps == 0
                      ? 1.0
                      : static_cast<double>(reconverged) /
                            static_cast<double>(config.steps);
  out.cluster_count = clusters.mean();
  out.reconverge_time = reconv_time.mean();
  out.reconverge_messages = reconv_messages.mean();
  out.windows = reconv_time.count();
  return out;
}

}  // namespace

namespace {

/// One certification trial (verify_faults=true): corrupt with the grid
/// point's fault class, run to fixpoint on both engines (async half
/// under the grid point's daemon), check legitimacy + cross-engine
/// agreement. The trial draws its own deployment from the run seed
/// (verify::run_trial is the single definition the CLI, the tests, and
/// the shrinker share), so the repro specs the shrinker emits replay
/// through this exact path.
RunMetrics execute_verify_run(const ScenarioConfig& config,
                              std::uint64_t seed) {
  const verify::TrialSpec spec = verify::trial_from_scenario(config, seed);
  const verify::TrialResult r = verify::run_trial(spec);
  RunMetrics out;
  out.stability = r.passed ? 1.0 : 0.0;
  out.delta = 0.0;
  out.reaffiliation = 0.0;
  out.cluster_count = static_cast<double>(r.heads);
  out.converge_time = r.async_time_s;
  out.messages = static_cast<double>(r.async_messages);
  out.sync_steps = static_cast<double>(r.sync_steps);
  out.sync_messages = static_cast<double>(r.sync_messages);
  out.windows = 1;
  return out;
}

}  // namespace

RunMetrics execute_run(const ScenarioConfig& config, std::uint64_t seed,
                       RunWorkspace& ws, const ExecutionOptions& exec) {
  // Verify trials own their whole world (deployment included, drawn
  // from the seed inside run_trial); dispatch before the shared
  // deployment draw below.
  if (config.verify_faults) {
    return execute_verify_run(config, seed);
  }

  util::Rng rng(seed);

  switch (config.topology) {
    case TopologyKind::kUniform:
      ws.points = topology::uniform_points(config.n, rng);
      break;
    case TopologyKind::kGrid:
      ws.points = topology::grid_points(topology::grid_side_for(config.n));
      break;
    case TopologyKind::kPoisson:
      ws.points = topology::poisson_points(static_cast<double>(config.n), rng);
      break;
  }
  const std::size_t n = ws.points.size();
  RunMetrics out;
  if (n == 0) {  // a Poisson draw can be empty; nothing to measure
    out.cluster_count = 0.0;
    return out;
  }

  // Grid deployments get the paper's adversarial left-to-right id order;
  // everything else gets uniformly random identifiers (same convention as
  // the CLI's make_deployment).
  const auto ids = config.topology == TopologyKind::kGrid
                       ? topology::sequential_ids(n)
                       : topology::random_ids(n, rng);

  // The live (protocol-under-mobility) and async modes get their own
  // execution paths; the deployment above (points, ids) is drawn
  // identically, so every mode over the same topology axes sees the
  // same world.
  if (config.protocol_live) {
    return execute_live_run(config, ids, rng, ws, exec);
  }
  if (config.scheduler == SchedulerKind::kAsync) {
    return execute_async_run(config, ids, rng, ws);
  }

  // One independent sub-stream per stochastic process, split in a fixed
  // order so adding a process never perturbs the others.
  util::Rng mobility_rng = rng.split();
  util::Rng churn_rng = rng.split();
  util::Rng loss_rng = rng.split();
  util::Rng dag_rng = rng.split();

  auto mover = make_mover(config, n, mobility_rng);

  std::optional<sim::NodeChurn> churn;
  if (config.churn_down > 0.0) {
    churn.emplace(n, config.churn_down, config.churn_up, churn_rng);
  }

  const core::ClusterOptions options = variant_options(config.variant);

  util::RunningStats stability, delta, reaffiliation, clusters;
  ws.prev_heads.clear();
  bool has_previous = false;

  for (std::size_t window = 0; window < config.steps; ++window) {
    graph::Graph g = topology::unit_disk_graph(ws.points, config.radius);
    if (churn) g = sim::mask_nodes(g, churn->step());
    if (config.tau < 1.0) g = sim::drop_links(g, 1.0 - config.tau, loss_rng);

    const std::span<const char> incumbents(ws.prev_heads.data(),
                                           ws.prev_heads.size());
    core::ClusteringResult result;
    if (options.use_dag_ids) {
      // DAG names are a property of the current graph; rebuild per window.
      const auto dag = core::build_dag_ids(g, ids, {}, dag_rng);
      result = core::cluster_density(g, ids, options, dag.ids, incumbents);
    } else {
      result = core::cluster_density(g, ids, options, {}, incumbents);
    }

    clusters.add(static_cast<double>(result.cluster_count()));
    if (has_previous) {
      stability.add(metrics::reelection_ratio(
          incumbents,
          std::span<const char>(result.is_head.data(), result.is_head.size())));
      const auto diff = metrics::diff_clusterings(ws.previous, result);
      delta.add(static_cast<double>(diff.membership_changes) /
                static_cast<double>(n));
      reaffiliation.add(static_cast<double>(diff.parent_changes) /
                        static_cast<double>(n));
    }
    ws.prev_heads.assign(result.is_head.begin(), result.is_head.end());
    ws.previous = std::move(result);
    has_previous = true;

    if (mover) mover->step(ws.points, config.window_s);
  }

  out.windows = stability.count();
  out.stability = stability.empty() ? 1.0 : stability.mean();
  out.delta = delta.mean();
  out.reaffiliation = reaffiliation.mean();
  out.cluster_count = clusters.mean();
  return out;
}

namespace {

/// Thread-safe checkpoint publisher shared by the serial and pooled
/// paths. Workers report completions through mark_complete(); the
/// worker that crosses the cadence threshold copies the completed slots
/// under the lock and publishes the snapshot *off* the lock, so file IO
/// (including fsync) never stalls the other workers. The copy is
/// race-free: a result is written before its completion flag is set
/// under the mutex, and the copier holds the same mutex.
class CheckpointSink {
 public:
  CheckpointSink(const CheckpointOptions& ckpt, const CampaignPlan& plan,
                 const std::vector<RunMetrics>& results,
                 std::vector<char> completed)
      : ckpt_(ckpt),
        plan_(plan),
        results_(results),
        completed_(std::move(completed)) {}

  [[nodiscard]] bool enabled() const noexcept { return !ckpt_.path.empty(); }
  [[nodiscard]] bool is_complete(std::size_t i) const {
    return completed_[i] != 0;
  }

  void mark_complete(std::size_t i) {
    if (!enabled()) return;
    bool write_now = false;
    {
      const std::scoped_lock lock(mutex_);
      completed_[i] = 1;
      ++since_snapshot_;
      if (since_snapshot_ >= ckpt_.every_runs && !writer_busy_ &&
          error_ == nullptr) {
        writer_busy_ = true;
        since_snapshot_ = 0;
        write_now = true;
      }
    }
    if (write_now) publish();
  }

  /// Publishes the final complete snapshot and rethrows any checkpoint
  /// write error deferred from a worker. Call after all runs finish.
  void finish() {
    if (!enabled()) return;
    std::exception_ptr error;
    {
      const std::scoped_lock lock(mutex_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
    CheckpointState snap;
    snap.completed = completed_;
    snap.results = results_;
    write_checkpoint(ckpt_.path, plan_, snap);
  }

 private:
  void publish() {
    CheckpointState snap;
    {
      const std::scoped_lock lock(mutex_);
      snap.completed = completed_;
    }
    snap.results.assign(results_.size(), RunMetrics{});
    for (std::size_t i = 0; i < snap.completed.size(); ++i) {
      if (snap.completed[i] != 0) snap.results[i] = results_[i];
    }
    // Workers must never unwind through the pool's raw range callback;
    // park the error and fail the campaign from finish() instead.
    std::exception_ptr error;
    try {
      write_checkpoint(ckpt_.path, plan_, snap);
    } catch (...) {
      error = std::current_exception();
    }
    const std::scoped_lock lock(mutex_);
    writer_busy_ = false;
    if (error && error_ == nullptr) error_ = error;
  }

  const CheckpointOptions& ckpt_;
  const CampaignPlan& plan_;
  const std::vector<RunMetrics>& results_;
  std::vector<char> completed_;
  std::mutex mutex_;
  std::size_t since_snapshot_ = 0;
  bool writer_busy_ = false;
  std::exception_ptr error_;
};

}  // namespace

CampaignRunner::CampaignRunner(unsigned threads, const ExecutionOptions& exec)
    : threads_(threads == 0
                   ? std::max(1u, std::thread::hardware_concurrency())
                   : threads),
      exec_(exec) {}

std::vector<RunMetrics> CampaignRunner::run(const CampaignPlan& plan) {
  return run(plan, CheckpointOptions{}, nullptr);
}

std::vector<RunMetrics> CampaignRunner::run(const CampaignPlan& plan,
                                            const CheckpointOptions& ckpt,
                                            const CheckpointState* resume) {
  std::vector<RunMetrics> results(plan.runs.size());
  std::vector<char> completed(plan.runs.size(), 0);
  if (resume != nullptr) {
    completed = resume->completed;
    for (std::size_t i = 0; i < completed.size(); ++i) {
      if (completed[i] != 0) results[i] = resume->results[i];
    }
  }
  if (plan.runs.empty()) return results;

  CheckpointSink sink(ckpt, plan, results, completed);

  if (threads_ == 1 || plan.runs.size() == 1) {
    RunWorkspace ws;
    for (std::size_t i = 0; i < plan.runs.size(); ++i) {
      if (completed[i] != 0) continue;
      const auto& entry = plan.runs[i];
      results[i] =
          execute_run(plan.grid[entry.grid_index].config, entry.seed, ws, exec_);
      sink.mark_complete(i);
    }
    sink.finish();
    return results;
  }

  sim::ThreadPool pool(threads_);
  struct Ctx {
    const CampaignPlan* plan;
    RunMetrics* results;
    const char* completed;
    std::vector<RunWorkspace>* workspaces;
    std::vector<std::size_t>* free_slots;
    std::mutex* mutex;
    const ExecutionOptions* exec;
    CheckpointSink* sink;
  };
  // One workspace per pool thread; a range claims one for its duration.
  // At most thread_count() ranges execute concurrently, so the free list
  // can never underflow.
  std::vector<RunWorkspace> workspaces(pool.thread_count());
  std::vector<std::size_t> free_slots;
  free_slots.reserve(workspaces.size());
  for (std::size_t i = 0; i < workspaces.size(); ++i) free_slots.push_back(i);
  std::mutex mutex;
  Ctx ctx{&plan,       results.data(), completed.data(), &workspaces,
          &free_slots, &mutex,         &exec_,           &sink};

  pool.parallel_for(
      plan.runs.size(), 1,
      [](void* raw, std::size_t begin, std::size_t end) {
        auto& ctx = *static_cast<Ctx*>(raw);
        std::size_t slot;
        {
          const std::scoped_lock lock(*ctx.mutex);
          slot = ctx.free_slots->back();
          ctx.free_slots->pop_back();
        }
        RunWorkspace& ws = (*ctx.workspaces)[slot];
        for (std::size_t i = begin; i < end; ++i) {
          // `completed` is the immutable resume prefill, not live
          // progress; the sink tracks live completions separately.
          if (ctx.completed[i] != 0) continue;
          const auto& entry = ctx.plan->runs[i];
          ctx.results[i] = execute_run(ctx.plan->grid[entry.grid_index].config,
                                       entry.seed, ws, *ctx.exec);
          ctx.sink->mark_complete(i);
        }
        const std::scoped_lock lock(*ctx.mutex);
        ctx.free_slots->push_back(slot);
      },
      &ctx);
  sink.finish();
  return results;
}

}  // namespace ssmwn::campaign
