#include "campaign/spec.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <locale>
#include <set>
#include <sstream>

#include "util/rng.hpp"
#include "verify/trial.hpp"

namespace ssmwn::campaign {

namespace {

[[noreturn]] void fail(const std::string& message) { throw SpecError(message); }

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split_list(std::string_view value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto comma = value.find(',', start);
    out.push_back(trim(value.substr(start, comma - start)));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

double parse_number(const std::string& key, const std::string& raw) {
  // std::from_chars, not std::stod: strtod honors LC_NUMERIC, so under
  // a de_DE global locale "0.08" would stop parsing at the '.' and the
  // spec would be rejected — the input-side twin of the locale-free
  // output formatting in format_double below. A single leading '+'
  // (which strtod accepted but from_chars rejects) is still allowed.
  const char* first = raw.data();
  const char* last = raw.data() + raw.size();
  if (last - first > 1 && *first == '+' && *(first + 1) != '-' &&
      *(first + 1) != '+') {
    ++first;
  }
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec == std::errc::result_out_of_range) {
    fail(key + ": number '" + raw + "' is out of range");
  }
  if (ec != std::errc{}) fail(key + ": expected a number, got '" + raw + "'");
  if (ptr != raw.data() + raw.size()) {
    fail(key + ": trailing junk in number '" + raw + "'");
  }
  return v;
}

std::size_t parse_count(const std::string& key, const std::string& raw) {
  const double v = parse_number(key, raw);
  if (v < 0.0 || v != std::floor(v)) {
    fail(key + ": expected a non-negative integer, got '" + raw + "'");
  }
  // Bound before casting: double→size_t above SIZE_MAX is UB, and any
  // count near it is a typo, not a campaign.
  if (v > 1e15) fail(key + ": value '" + raw + "' is absurdly large");
  return static_cast<std::size_t>(v);
}

TopologyKind parse_topology(const std::string& raw) {
  if (raw == "uniform") return TopologyKind::kUniform;
  if (raw == "grid") return TopologyKind::kGrid;
  if (raw == "poisson") return TopologyKind::kPoisson;
  fail("topology: expected uniform|grid|poisson, got '" + raw + "'");
}

MobilityKind parse_mobility(const std::string& raw) {
  if (raw == "none") return MobilityKind::kNone;
  if (raw == "random-direction") return MobilityKind::kRandomDirection;
  if (raw == "random-waypoint") return MobilityKind::kRandomWaypoint;
  fail("mobility: expected none|random-direction|random-waypoint, got '" +
       raw + "'");
}

Variant parse_variant(const std::string& raw) {
  if (raw == "basic") return Variant::kBasic;
  if (raw == "dag") return Variant::kDag;
  if (raw == "improved") return Variant::kImproved;
  if (raw == "full") return Variant::kFull;
  fail("variant: expected basic|dag|improved|full, got '" + raw + "'");
}

SchedulerKind parse_scheduler(const std::string& raw) {
  if (raw == "sync") return SchedulerKind::kSync;
  if (raw == "async") return SchedulerKind::kAsync;
  fail("scheduler: expected sync|async, got '" + raw + "'");
}

bool parse_bool(const std::string& key, const std::string& raw) {
  if (raw == "true") return true;
  if (raw == "false") return false;
  fail(key + ": expected true|false, got '" + raw + "'");
}

TopologyUpdateKind parse_topology_update(const std::string& raw) {
  if (raw == "rebuild") return TopologyUpdateKind::kRebuild;
  if (raw == "incremental") return TopologyUpdateKind::kIncremental;
  fail("topology_update: expected rebuild|incremental, got '" + raw + "'");
}

SteppingKind parse_stepping(const std::string& raw) {
  if (raw == "full") return SteppingKind::kFull;
  if (raw == "dirty") return SteppingKind::kDirty;
  fail("stepping: expected full|dirty, got '" + raw + "'");
}

// The verify-axis spellings live with the taxonomy (verify/faults.cpp);
// rethrow their invalid_argument as SpecError so the parser's error
// contract (and the CLI's exit-code mapping) stays uniform.
verify::FaultClass parse_fault_class_or_fail(const std::string& raw) {
  try {
    return verify::parse_fault_class(raw);
  } catch (const std::invalid_argument& error) {
    fail(error.what());
  }
}

verify::Daemon parse_daemon_or_fail(const std::string& raw) {
  try {
    return verify::parse_daemon(raw);
  } catch (const std::invalid_argument& error) {
    fail(error.what());
  }
}

void require_scalar(const std::string& key,
                    const std::vector<std::string>& values) {
  if (values.size() != 1) {
    fail(key + ": this key does not support sweep lists");
  }
}

}  // namespace

std::string format_double(double value) {
  // Shortest round-trip-exact decimal; the precision-17 fallback
  // guarantees distinct values never serialize identically. Formatting
  // and the round-trip check go through std::to_chars/from_chars, which
  // are defined on the "C" locale regardless of LC_NUMERIC — an
  // LC_NUMERIC=de_DE process must not emit "0,08" into canonical
  // serializations (seeds!) or CSV/JSON (byte-identical replay).
  // to_chars with chars_format::general and explicit precision formats
  // exactly as printf "%.*g" does in the C locale, so the emitted bytes
  // are unchanged from the snprintf implementation this replaces.
  char buf[64];
  for (const int precision : {9, 17}) {
    const auto result = std::to_chars(buf, buf + sizeof buf - 1, value,
                                      std::chars_format::general, precision);
    *result.ptr = '\0';
    double parsed = 0.0;
    std::from_chars(buf, result.ptr, parsed);
    if (parsed == value) break;
  }
  return buf;
}

std::string_view to_string(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kUniform: return "uniform";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kPoisson: return "poisson";
  }
  return "?";
}

std::string_view to_string(MobilityKind kind) noexcept {
  switch (kind) {
    case MobilityKind::kNone: return "none";
    case MobilityKind::kRandomDirection: return "random-direction";
    case MobilityKind::kRandomWaypoint: return "random-waypoint";
  }
  return "?";
}

std::string_view to_string(Variant variant) noexcept {
  switch (variant) {
    case Variant::kBasic: return "basic";
    case Variant::kDag: return "dag";
    case Variant::kImproved: return "improved";
    case Variant::kFull: return "full";
  }
  return "?";
}

std::string_view to_string(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kSync: return "sync";
    case SchedulerKind::kAsync: return "async";
  }
  return "?";
}

std::string_view to_string(TopologyUpdateKind kind) noexcept {
  switch (kind) {
    case TopologyUpdateKind::kRebuild: return "rebuild";
    case TopologyUpdateKind::kIncremental: return "incremental";
  }
  return "?";
}

std::string_view to_string(SteppingKind kind) noexcept {
  switch (kind) {
    case SteppingKind::kFull: return "full";
    case SteppingKind::kDirty: return "dirty";
  }
  return "?";
}

std::string canonical_config(const ScenarioConfig& c) {
  std::ostringstream out;
  // Integer formatting also honors the stream's locale (grouping, e.g.
  // "1.000" under de_DE); pin the classic locale so canonical strings —
  // and therefore seeds — never depend on the process environment.
  out.imbue(std::locale::classic());
  out << "topology=" << to_string(c.topology) << ";n=" << c.n
      << ";radius=" << format_double(c.radius)
      << ";variant=" << to_string(c.variant)
      << ";mobility=" << to_string(c.mobility)
      << ";speed_min=" << format_double(c.speed_min)
      << ";speed_max=" << format_double(c.speed_max)
      << ";tau=" << format_double(c.tau)
      << ";churn_down=" << format_double(c.churn_down)
      << ";churn_up=" << format_double(c.churn_up) << ";steps=" << c.steps
      << ";window_s=" << format_double(c.window_s)
      << ";world_m=" << format_double(c.world_m);
  // Appended only for async points — see the header comment: this keeps
  // every pre-existing synchronous campaign's seeds bit-stable.
  if (c.scheduler != SchedulerKind::kSync) {
    out << ";scheduler=" << to_string(c.scheduler)
        << ";period_jitter=" << format_double(c.period_jitter)
        << ";link_delay=" << format_double(c.link_delay);
  }
  // Same release-boundary discipline for the dynamic-topology axis: a
  // non-live point serializes exactly as it did before the axis existed.
  if (c.protocol_live) {
    out << ";protocol_live=true;topology_update="
        << to_string(c.topology_update) << ";live_horizon=" << c.live_horizon;
  }
  // And for the certification axis: only verify points carry it.
  if (c.verify_faults) {
    out << ";verify_faults=true;fault_class="
        << verify::to_string(c.fault_class)
        << ";daemon=" << verify::to_string(c.daemon);
  }
  // Quiescence axis: serialized only when it both applies and deviates
  // from the default. `stepping=full` is never written — full stepping
  // is what every campaign ran before the axis existed, so even
  // pre-existing *live and async* points keep their exact canonical
  // strings (and seeds, and outputs) across this release boundary.
  if (stepping_applies(c) && c.stepping == SteppingKind::kDirty) {
    out << ";stepping=dirty";
  }
  return out.str();
}

CampaignSpec parse_spec_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse_spec(in);
}

CampaignSpec parse_spec(std::istream& in) {
  CampaignSpec spec;
  std::set<std::string> seen;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      fail("line " + std::to_string(line_no) + ": expected 'key = value', got '" +
           stripped + "'");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const auto values = split_list(stripped.substr(eq + 1));
    if (key.empty()) fail("line " + std::to_string(line_no) + ": empty key");
    for (const auto& v : values) {
      if (v.empty()) {
        fail(key + ": empty value (line " + std::to_string(line_no) + ")");
      }
    }
    if (!seen.insert(key).second) fail("duplicate key '" + key + "'");

    if (key == "name") {
      require_scalar(key, values);
      spec.name = values.front();
    } else if (key == "replications") {
      require_scalar(key, values);
      spec.replications = parse_count(key, values.front());
    } else if (key == "seed_base") {
      require_scalar(key, values);
      const std::string& raw = values.front();
      // Strict like every other key: stoull alone would wrap negatives
      // modulo 2^64 and silently drop trailing junk.
      try {
        std::size_t used = 0;
        if (raw.front() == '-') throw std::invalid_argument(raw);
        spec.seed_base = std::stoull(raw, &used);
        if (used != raw.size()) throw std::invalid_argument(raw);
      } catch (const std::exception&) {
        fail("seed_base: expected an unsigned integer, got '" + raw + "'");
      }
    } else if (key == "window_s") {
      require_scalar(key, values);
      spec.window_s = parse_number(key, values.front());
    } else if (key == "world_m") {
      require_scalar(key, values);
      spec.world_m = parse_number(key, values.front());
    } else if (key == "topology") {
      spec.topology.clear();
      for (const auto& v : values) spec.topology.push_back(parse_topology(v));
    } else if (key == "n") {
      spec.n.clear();
      for (const auto& v : values) spec.n.push_back(parse_count(key, v));
    } else if (key == "radius") {
      spec.radius.clear();
      for (const auto& v : values) spec.radius.push_back(parse_number(key, v));
    } else if (key == "variant") {
      spec.variant.clear();
      for (const auto& v : values) spec.variant.push_back(parse_variant(v));
    } else if (key == "mobility") {
      spec.mobility.clear();
      for (const auto& v : values) spec.mobility.push_back(parse_mobility(v));
    } else if (key == "speed_min") {
      spec.speed_min.clear();
      for (const auto& v : values) {
        spec.speed_min.push_back(parse_number(key, v));
      }
    } else if (key == "speed_max") {
      spec.speed_max.clear();
      for (const auto& v : values) {
        spec.speed_max.push_back(parse_number(key, v));
      }
    } else if (key == "tau") {
      spec.tau.clear();
      for (const auto& v : values) spec.tau.push_back(parse_number(key, v));
    } else if (key == "churn_down") {
      spec.churn_down.clear();
      for (const auto& v : values) {
        spec.churn_down.push_back(parse_number(key, v));
      }
    } else if (key == "churn_up") {
      spec.churn_up.clear();
      for (const auto& v : values) {
        spec.churn_up.push_back(parse_number(key, v));
      }
    } else if (key == "steps") {
      spec.steps.clear();
      for (const auto& v : values) spec.steps.push_back(parse_count(key, v));
    } else if (key == "scheduler") {
      spec.scheduler.clear();
      for (const auto& v : values) spec.scheduler.push_back(parse_scheduler(v));
    } else if (key == "period_jitter") {
      spec.period_jitter.clear();
      for (const auto& v : values) {
        spec.period_jitter.push_back(parse_number(key, v));
      }
    } else if (key == "link_delay") {
      spec.link_delay.clear();
      for (const auto& v : values) {
        spec.link_delay.push_back(parse_number(key, v));
      }
    } else if (key == "protocol_live") {
      spec.protocol_live.clear();
      for (const auto& v : values) {
        spec.protocol_live.push_back(parse_bool(key, v));
      }
    } else if (key == "topology_update") {
      spec.topology_update.clear();
      for (const auto& v : values) {
        spec.topology_update.push_back(parse_topology_update(v));
      }
    } else if (key == "live_horizon") {
      require_scalar(key, values);
      spec.live_horizon = parse_count(key, values.front());
    } else if (key == "verify_faults") {
      spec.verify_faults.clear();
      for (const auto& v : values) {
        spec.verify_faults.push_back(parse_bool(key, v));
      }
    } else if (key == "fault_class") {
      spec.fault_class.clear();
      for (const auto& v : values) {
        spec.fault_class.push_back(parse_fault_class_or_fail(v));
      }
    } else if (key == "daemon") {
      spec.daemon.clear();
      for (const auto& v : values) {
        spec.daemon.push_back(parse_daemon_or_fail(v));
      }
    } else if (key == "stepping") {
      spec.stepping.clear();
      for (const auto& v : values) spec.stepping.push_back(parse_stepping(v));
    } else {
      fail("unknown key '" + key + "' (line " + std::to_string(line_no) + ")");
    }
  }
  validate(spec);
  return spec;
}

CampaignSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open spec file '" + path + "'");
  return parse_spec(in);
}

void validate(const CampaignSpec& spec) {
  if (spec.replications == 0) fail("replications: must be at least 1");
  // Negated comparisons so NaN fails every range check.
  if (!(spec.window_s > 0.0)) fail("window_s: must be positive");
  if (!(spec.world_m > 0.0)) fail("world_m: must be positive");
  if (spec.name.empty()) fail("name: must be non-empty");
  auto check_each = [](const char* key, const auto& values, auto&& ok,
                       const char* what) {
    if (values.empty()) fail(std::string(key) + ": needs at least one value");
    for (const auto& v : values) {
      if (!ok(v)) {
        fail(std::string(key) + ": " + what);
      }
    }
  };
  check_each("n", spec.n, [](std::size_t v) { return v >= 1; },
             "node count must be at least 1");
  check_each("radius", spec.radius, [](double v) { return v > 0.0 && v < 1e9; },
             "radius must be positive");
  check_each("tau", spec.tau, [](double v) { return v > 0.0 && v <= 1.0; },
             "delivery probability must be in (0, 1]");
  check_each("churn_down", spec.churn_down,
             [](double v) { return v >= 0.0 && v <= 1.0; },
             "probability must be in [0, 1]");
  check_each("churn_up", spec.churn_up,
             [](double v) { return v >= 0.0 && v <= 1.0; },
             "probability must be in [0, 1]");
  check_each("speed_min", spec.speed_min,
             [](double v) { return v >= 0.0 && v < 1e9; },
             "speed must be non-negative");
  check_each("speed_max", spec.speed_max,
             [](double v) { return v >= 0.0 && v < 1e9; },
             "speed must be non-negative");
  check_each("steps", spec.steps, [](std::size_t v) { return v >= 1; },
             "at least one snapshot window is required");
  check_each("period_jitter", spec.period_jitter,
             [](double v) { return v >= 0.0 && v < 1.0; },
             "jitter fraction must be in [0, 1)");
  check_each("link_delay", spec.link_delay,
             [](double v) { return v >= 0.0 && v < 1e9; },
             "delay must be non-negative seconds");
  if (spec.live_horizon == 0) {
    fail("live_horizon: must be at least 1 round");
  }
  // Empty axes for the enum fields can only arise programmatically.
  if (spec.topology.empty()) fail("topology: needs at least one value");
  if (spec.variant.empty()) fail("variant: needs at least one value");
  if (spec.mobility.empty()) fail("mobility: needs at least one value");
  if (spec.scheduler.empty()) fail("scheduler: needs at least one value");
  if (spec.protocol_live.empty()) {
    fail("protocol_live: needs at least one value");
  }
  if (spec.topology_update.empty()) {
    fail("topology_update: needs at least one value");
  }
  if (spec.verify_faults.empty()) {
    fail("verify_faults: needs at least one value");
  }
  if (spec.fault_class.empty()) fail("fault_class: needs at least one value");
  if (spec.daemon.empty()) fail("daemon: needs at least one value");
  if (spec.stepping.empty()) fail("stepping: needs at least one value");
}

std::uint64_t run_seed(std::uint64_t seed_base, std::string_view canonical,
                       std::uint64_t replication) noexcept {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64-bit
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  // Finalize through SplitMix64 so nearby (seed_base, rep) pairs land in
  // unrelated parts of the seed space.
  std::uint64_t state = seed_base;
  const std::uint64_t base = util::splitmix64(state);
  state = h ^ base;
  const std::uint64_t point = util::splitmix64(state);
  state = point + replication * 0x9e3779b97f4a7c15ULL;
  return util::splitmix64(state);
}

CampaignPlan expand(const CampaignSpec& spec) {
  validate(spec);
  CampaignPlan plan;
  plan.name = spec.name;
  plan.replications = spec.replications;
  plan.seed_base = spec.seed_base;

  // Fixed axis nesting (outermost first). The order here — not the order
  // of lines in the spec file — defines grid indices, so two files with
  // reordered fields expand to identical plans. The newest (verify)
  // axes nest innermost of all; they are applied in a second, shallow
  // stage below so this ladder stops growing a level per release.
  std::vector<ScenarioConfig> base_points;
  for (const auto topology : spec.topology) {
    for (const auto n : spec.n) {
      for (const auto radius : spec.radius) {
        for (const auto variant : spec.variant) {
          for (const auto mobility : spec.mobility) {
            for (const auto speed_min : spec.speed_min) {
              for (const auto speed_max : spec.speed_max) {
                for (const auto tau : spec.tau) {
                  for (const auto churn_down : spec.churn_down) {
                    for (const auto churn_up : spec.churn_up) {
                      for (const auto steps : spec.steps) {
                        // New axes nest innermost so a sync-only spec's
                        // grid order is exactly what it was before the
                        // scheduler axis existed.
                        for (const auto scheduler : spec.scheduler) {
                          for (const auto period_jitter : spec.period_jitter) {
                            for (const auto link_delay : spec.link_delay) {
                              // The async knobs don't affect a sync run
                              // (or its canonical string); emit each
                              // sync point once, not once per knob
                              // combination, so seeds stay unique.
                              if (scheduler == SchedulerKind::kSync &&
                                  (period_jitter !=
                                       spec.period_jitter.front() ||
                                   link_delay != spec.link_delay.front())) {
                                continue;
                              }
                              // Newest axes innermost, same discipline:
                              // a non-live point ignores topology_update
                              // (and doesn't serialize it), so emit it
                              // once per knob value set.
                              for (const bool protocol_live :
                                   spec.protocol_live) {
                                for (const auto topology_update :
                                     spec.topology_update) {
                                  if (!protocol_live &&
                                      topology_update !=
                                          spec.topology_update.front()) {
                                    continue;
                                  }
                              ScenarioConfig config;
                              config.topology = topology;
                              config.n = n;
                              config.radius = radius;
                              config.variant = variant;
                              config.mobility = mobility;
                              config.speed_min = speed_min;
                              config.speed_max = speed_max;
                              config.tau = tau;
                              config.churn_down = churn_down;
                              config.churn_up = churn_up;
                              config.steps = steps;
                              config.window_s = spec.window_s;
                              config.world_m = spec.world_m;
                              config.scheduler = scheduler;
                              config.period_jitter = period_jitter;
                              config.link_delay = link_delay;
                              config.protocol_live = protocol_live;
                              config.topology_update = topology_update;
                              config.live_horizon = spec.live_horizon;
                              if (config.speed_min > config.speed_max) {
                                fail("speed_min " +
                                     format_double(config.speed_min) +
                                     " exceeds speed_max " +
                                     format_double(config.speed_max));
                              }
                              if (config.scheduler == SchedulerKind::kAsync &&
                                  !config.protocol_live &&
                                  (config.mobility != MobilityKind::kNone ||
                                   config.churn_down > 0.0)) {
                                fail("scheduler=async with mobility/churn "
                                     "requires protocol_live=true (the "
                                     "dynamic-topology mode); without it the "
                                     "event-driven engine runs a fixed "
                                     "deployment from an adversarial initial "
                                     "state");
                              }
                              if (config.scheduler == SchedulerKind::kAsync &&
                                  config.window_s < 1e-6) {
                                fail("scheduler=async requires window_s >= "
                                     "1e-6 (one virtual-time tick; window_s "
                                     "is the async broadcast period)");
                              }
                              if (config.protocol_live &&
                                  config.window_s < 1e-6) {
                                fail("protocol_live=true requires window_s >= "
                                     "1e-6 (window_s is the perturbation "
                                     "period and the live broadcast round)");
                              }
                              base_points.push_back(config);
                                }
                              }
                            }
                          }
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  // Stage 2: the certification axes, innermost of all (same
  // release-boundary discipline as every prior axis: a non-verify point
  // ignores fault_class and daemon, so emit it once per value set).
  // Base-major, verify-minor iteration — identical grid order to
  // splicing three more loops into the nest above, without deepening it.
  for (const ScenarioConfig& base : base_points) {
    for (const bool verify_faults : spec.verify_faults) {
      for (const auto fault_class : spec.fault_class) {
        for (const auto daemon : spec.daemon) {
          if (!verify_faults && (fault_class != spec.fault_class.front() ||
                                 daemon != spec.daemon.front())) {
            continue;
          }
          // The stepping axis nests innermost of all. It only sweeps on
          // points that have a stepper (live or async, never verify);
          // everywhere else the point is emitted once, with the axis
          // collapsed to its first value.
          for (const auto stepping : spec.stepping) {
          ScenarioConfig config = base;
          config.verify_faults = verify_faults;
          config.fault_class = fault_class;
          config.daemon = daemon;
          config.stepping = stepping;
          if (!stepping_applies(config) &&
              stepping != spec.stepping.front()) {
            continue;
          }
          if (config.stepping == SteppingKind::kDirty &&
              config.protocol_live &&
              config.scheduler == SchedulerKind::kSync && config.tau < 1.0) {
            // The synchronous dirty stepper elides whole nodes per tick,
            // which is only bit-identical when the medium is loss-free
            // (sim::Network::set_stepping enforces the same at runtime).
            fail("stepping=dirty on the synchronous engine requires tau=1 "
                 "(a lossy medium draws per-link randomness for skipped "
                 "nodes; use scheduler=async for lossy dirty runs)");
          }
          if (config.verify_faults) {
            // A certification trial is one corrupted fixed deployment
            // played on BOTH engines; every axis that would change that
            // shape is rejected loudly rather than silently ignored.
            if (config.protocol_live) {
              fail("verify_faults=true is incompatible with "
                   "protocol_live=true (a trial runs a fixed deployment)");
            }
            if (config.scheduler != SchedulerKind::kSync) {
              fail("verify_faults=true runs both engines itself; drop the "
                   "scheduler axis (use daemon= for the async half)");
            }
            if (config.mobility != MobilityKind::kNone ||
                config.churn_down > 0.0) {
              fail("verify_faults=true is incompatible with mobility/churn "
                   "(a trial runs a fixed deployment)");
            }
            if (config.topology != TopologyKind::kUniform) {
              fail("verify_faults=true requires topology=uniform (trials "
                   "draw their own uniform deployments)");
            }
            if (config.steps < verify::kMinHorizonRounds) {
              // Below this no trial can ever confirm legitimacy, so
              // every replication would report a "violation" that is
              // really a budget impossibility.
              fail("verify_faults=true requires steps >= " +
                   std::to_string(verify::kMinHorizonRounds) +
                   " (the horizon must cover the " +
                   std::to_string(verify::kDefaultConfirmRounds) +
                   "-round confirmation window plus the quiescence "
                   "baseline)");
            }
          }
          plan.grid.push_back({config, canonical_config(config)});
          }
        }
      }
    }
  }

  plan.runs.reserve(plan.grid.size() * spec.replications);
  for (std::size_t g = 0; g < plan.grid.size(); ++g) {
    for (std::size_t rep = 0; rep < spec.replications; ++rep) {
      plan.runs.push_back(
          {g, rep, run_seed(spec.seed_base, plan.grid[g].canonical, rep)});
    }
  }
  return plan;
}

}  // namespace ssmwn::campaign
