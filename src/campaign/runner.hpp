// Sharded replication runner for experiment campaigns.
//
// A campaign is an embarrassingly parallel bag of runs: each run owns
// its deployment, its mobility/churn/loss processes, and its RNG (seeded
// solely from the plan), and never reads another run's state. The runner
// shards the bag across a `sim::ThreadPool` — one run per dynamically
// claimed chunk — and writes each result into its plan slot, so the
// result vector (and everything aggregated from it in index order) is
// bit-identical for any thread count. Per-worker `RunWorkspace`s are
// leased for the duration of a run and reused across runs, so the
// window-loop scratch state stops churning the heap once every worker
// has warmed up; the per-window graph/clustering rebuilds allocate and
// free symmetrically, keeping the steady-state heap flat (audited by
// bench_campaign).
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/spec.hpp"
#include "core/clustering.hpp"
#include "topology/point.hpp"

namespace ssmwn::campaign {

struct CheckpointState;  // campaign/checkpoint.hpp

/// Per-run outcome. Sync runs (scheduler=sync) report means over the
/// run's snapshot windows; async runs (scheduler=async) report one
/// self-stabilization experiment — the distributed protocol played on
/// the event-driven engine from an adversarial initial state.
struct RunMetrics {
  /// Sync: mean fraction of cluster-heads re-elected window over window
  /// (the paper's mobility-stability percentage, as a ratio).
  /// Async: 1.0 if the run converged within its virtual horizon, else
  /// 0.0 — aggregates to the convergence rate across replications.
  /// Verify: 1.0 if the certification trial passed (both engines
  /// converged, closure held, engines agreed), else 0.0.
  double stability = 1.0;
  /// Mean fraction of nodes whose resolved cluster changed per window.
  /// Sync only — the report writers omit it for async points.
  double delta = 0.0;
  /// Mean fraction of nodes whose clusterization-tree parent changed.
  /// Sync only, like delta.
  double reaffiliation = 0.0;
  /// Mean number of clusters per snapshot (async: final head count).
  double cluster_count = 0.0;
  /// Async/live: virtual time (s) at which the final uninterrupted
  /// legitimate run began (cold start); the full horizon when it never
  /// converged. Live sync runs report rounds × window_s so the unit is
  /// virtual seconds on both engines.
  double converge_time = 0.0;
  /// Async/live: frame deliveries observed up to that point.
  double messages = 0.0;
  /// Live only: mean virtual seconds from a topology perturbation to
  /// the start of the final legitimate run of its window (horizon-capped
  /// for windows that never re-converged — the cap is part of the
  /// distribution, not hidden).
  double reconverge_time = 0.0;
  /// Live only: mean frame deliveries between a perturbation and its
  /// re-convergence, same capping rule.
  double reconverge_messages = 0.0;
  /// Verify only: steps the trial's *synchronous* engine needed to reach
  /// confirmed legitimacy (the horizon when it diverged) — the paper's
  /// step-count bound, measured next to the async virtual time above.
  double sync_steps = 0.0;
  /// Verify only: frame deliveries of the synchronous half up to that
  /// point.
  double sync_messages = 0.0;
  /// Sync: window-over-window comparisons that contributed.
  /// Async: legitimacy checks performed. Live: perturbation windows.
  /// Verify: 1 (one certification trial per run).
  std::size_t windows = 0;
};

/// Reusable scratch state for one worker; lease one per concurrent run.
/// `clear()`-style reuse keeps capacity, so a warmed-up worker re-enters
/// the window loop without growing the heap.
struct RunWorkspace {
  std::vector<topology::Point> points;
  std::vector<char> prev_heads;
  core::ClusteringResult previous;
};

/// Execution knobs that must never influence results. Like the runner's
/// thread count — and unlike every ScenarioConfig axis — these are NOT
/// part of the experiment's identity: they never enter canonical config
/// strings or run seeds, and campaign outputs are byte-identical at any
/// value (the sharded engine is bit-identical to sim::Network, asserted
/// by tests/sim/sharded_equivalence_test.cpp and the campaign replay
/// tests).
struct ExecutionOptions {
  /// 0 or 1 = the unsharded sim::Network; >= 2 = sim::ShardedNetwork
  /// with that many contiguous shards. Applies to synchronous
  /// protocol-live runs (the only campaign path that steps a sync
  /// engine); classic-window and async runs ignore it.
  std::size_t shards = 0;
};

/// Periodic checkpointing of a campaign in flight. Like
/// ExecutionOptions, these knobs never influence results: a checkpoint
/// records results, it does not create them, so output is byte-identical
/// with checkpointing on, off, or at any cadence.
struct CheckpointOptions {
  /// Sidecar file to publish snapshots to; empty disables checkpointing.
  /// Each snapshot is a complete, self-validating file installed by
  /// atomic rename (campaign/checkpoint.hpp), so the path is always
  /// either absent or a loadable checkpoint.
  std::string path;
  /// Publish a snapshot after at least this many newly completed runs
  /// since the last one. Snapshots are written by whichever worker
  /// crosses the threshold, off the lock; if a write is still in flight
  /// the trigger is deferred, so slow storage throttles checkpoint
  /// frequency instead of stalling the sweep.
  std::size_t every_runs = 64;
};

/// Executes one run of `config` from `seed`. All randomness derives from
/// `seed`; two calls with equal arguments return identical metrics —
/// for async configs the whole event trace is deterministic, so this
/// holds for the event-driven engine too, and `exec` cannot perturb the
/// result (see ExecutionOptions).
[[nodiscard]] RunMetrics execute_run(const ScenarioConfig& config,
                                     std::uint64_t seed, RunWorkspace& ws,
                                     const ExecutionOptions& exec = {});

class CampaignRunner {
 public:
  /// `threads` is the total parallelism including the caller; 0 means
  /// hardware concurrency. 1 runs everything inline. `exec` carries the
  /// result-neutral engine knobs every run shares.
  explicit CampaignRunner(unsigned threads = 1,
                          const ExecutionOptions& exec = {});

  [[nodiscard]] unsigned thread_count() const noexcept { return threads_; }
  [[nodiscard]] const ExecutionOptions& execution() const noexcept {
    return exec_;
  }

  /// Runs every entry of the plan and returns the metrics in plan order.
  /// Deterministic for any thread count.
  [[nodiscard]] std::vector<RunMetrics> run(const CampaignPlan& plan);

  /// As run(plan), with optional checkpointing and resume. `resume`
  /// (slot results recovered by load_checkpoint, already validated
  /// against this plan) prefills completed slots, which are skipped —
  /// every remaining run still executes from its plan seed, so the
  /// returned vector is byte-identical to an uninterrupted run at any
  /// thread count. If `ckpt.path` is set, snapshots are published there
  /// during execution and a final complete snapshot on return.
  [[nodiscard]] std::vector<RunMetrics> run(const CampaignPlan& plan,
                                            const CheckpointOptions& ckpt,
                                            const CheckpointState* resume);

 private:
  unsigned threads_;
  ExecutionOptions exec_;
};

}  // namespace ssmwn::campaign
