#include "routing/broadcast.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "graph/algorithms.hpp"

namespace ssmwn::routing {

namespace {

/// Generic forwarding-set simulation: BFS from `source` where only nodes
/// with `forwards[node]` set retransmit (the source always transmits).
BroadcastCost simulate(const graph::Graph& g, graph::NodeId source,
                       const std::vector<char>& forwards) {
  BroadcastCost cost;
  std::vector<std::uint32_t> covered_at(g.node_count(),
                                        graph::kUnreachable);
  std::queue<graph::NodeId> transmit_queue;
  covered_at[source] = 0;
  transmit_queue.push(source);
  cost.covered = 1;
  while (!transmit_queue.empty()) {
    const graph::NodeId u = transmit_queue.front();
    transmit_queue.pop();
    ++cost.transmissions;
    for (graph::NodeId v : g.neighbors(u)) {
      if (covered_at[v] != graph::kUnreachable) continue;
      covered_at[v] = covered_at[u] + 1;
      cost.steps = std::max<std::size_t>(cost.steps, covered_at[v]);
      ++cost.covered;
      if (forwards[v]) transmit_queue.push(v);
    }
  }
  return cost;
}

}  // namespace

BroadcastCost flood(const graph::Graph& g, graph::NodeId source) {
  const std::vector<char> all(g.node_count(), 1);
  return simulate(g, source, all);
}

BroadcastCost cluster_broadcast(const graph::Graph& g,
                                const core::ClusteringResult& clustering,
                                graph::NodeId source) {
  std::vector<char> forwards(g.node_count(), 0);
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    if (clustering.is_head[p]) {
      forwards[p] = 1;
      continue;
    }
    for (graph::NodeId q : g.neighbors(p)) {
      if (clustering.head_index[q] != clustering.head_index[p]) {
        forwards[p] = 1;  // gateway
        break;
      }
    }
    // Relay along the clusterization tree as well: a node whose children
    // exist in the forest must forward for intra-cluster coverage.
    if (!forwards[p]) {
      for (graph::NodeId q : g.neighbors(p)) {
        if (clustering.parent[q] == p) {
          forwards[p] = 1;
          break;
        }
      }
    }
  }
  return simulate(g, source, forwards);
}

BroadcastCost tree_broadcast(const graph::Graph& g, graph::NodeId source) {
  // Internal nodes of a BFS tree rooted at the source.
  std::vector<graph::NodeId> parent(g.node_count(), graph::kInvalidNode);
  std::queue<graph::NodeId> frontier;
  parent[source] = source;
  frontier.push(source);
  std::vector<char> internal(g.node_count(), 0);
  while (!frontier.empty()) {
    const graph::NodeId u = frontier.front();
    frontier.pop();
    for (graph::NodeId v : g.neighbors(u)) {
      if (parent[v] != graph::kInvalidNode) continue;
      parent[v] = u;
      internal[u] = 1;
      frontier.push(v);
    }
  }
  return simulate(g, source, internal);
}

}  // namespace ssmwn::routing
