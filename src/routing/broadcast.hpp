// Network-wide dissemination — quantifying the traffic claim of the
// paper's Section 2: clusterization "allows to limit the exchanged
// traffic generated while clusters are re-built and the nodes' tables
// updated".
//
// Three dissemination strategies for one message that must reach every
// node, costed in radio transmissions:
//
//  * blind flooding          — every node retransmits once (the flat
//                              baseline; n transmissions);
//  * clusterized dissemination — only cluster-heads and the gateway
//                              nodes that bridge adjacent clusters
//                              retransmit; members just listen;
//  * tree dissemination      — lower bound for comparison: retransmit
//                              only on a BFS spanning tree (internal
//                              nodes only).
//
// All three are simulated over the step model (one hop per step) and
// report transmissions + steps to full coverage.
#pragma once

#include <cstddef>

#include "core/clustering.hpp"
#include "graph/graph.hpp"

namespace ssmwn::routing {

struct BroadcastCost {
  std::size_t transmissions = 0;  ///< radio sends, the bandwidth cost
  std::size_t steps = 0;          ///< hops until the last node is covered
  std::size_t covered = 0;        ///< nodes reached (== component size)
};

/// Blind flooding from `source`: every covered node retransmits exactly
/// once.
[[nodiscard]] BroadcastCost flood(const graph::Graph& g,
                                  graph::NodeId source);

/// Cluster-based dissemination: a node retransmits iff it is a
/// cluster-head or a gateway (has a neighbor in another cluster).
/// Members that are neither only receive.
[[nodiscard]] BroadcastCost cluster_broadcast(
    const graph::Graph& g, const core::ClusteringResult& clustering,
    graph::NodeId source);

/// BFS-spanning-tree dissemination (the idealized lower bound: only
/// internal tree nodes transmit).
[[nodiscard]] BroadcastCost tree_broadcast(const graph::Graph& g,
                                           graph::NodeId source);

}  // namespace ssmwn::routing
