#include "routing/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace ssmwn::routing {

namespace {

/// BFS shortest path with an optional membership filter.
std::vector<graph::NodeId> bfs_path(const graph::Graph& g, graph::NodeId src,
                                    graph::NodeId dst,
                                    const std::vector<char>* allowed) {
  if (src == dst) return {src};
  std::vector<graph::NodeId> parent(g.node_count(), graph::kInvalidNode);
  std::queue<graph::NodeId> frontier;
  parent[src] = src;
  frontier.push(src);
  while (!frontier.empty()) {
    const graph::NodeId u = frontier.front();
    frontier.pop();
    for (graph::NodeId v : g.neighbors(u)) {
      if (allowed != nullptr && !(*allowed)[v]) continue;
      if (parent[v] != graph::kInvalidNode) continue;
      parent[v] = u;
      if (v == dst) {
        std::vector<graph::NodeId> path{dst};
        for (graph::NodeId cur = dst; cur != src;) {
          cur = parent[cur];
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(v);
    }
  }
  return {};
}

}  // namespace

bool valid_route(const graph::Graph& g, const Route& route,
                 graph::NodeId src, graph::NodeId dst) {
  if (!route.ok()) return false;
  if (route.hops.front() != src || route.hops.back() != dst) return false;
  for (std::size_t i = 0; i + 1 < route.hops.size(); ++i) {
    if (!g.adjacent(route.hops[i], route.hops[i + 1])) return false;
  }
  return true;
}

Route FlatRouter::route(graph::NodeId src, graph::NodeId dst) const {
  return Route{bfs_path(*graph_, src, dst, nullptr)};
}

std::size_t FlatRouter::table_entries(graph::NodeId node) const {
  // One entry per other reachable node.
  const auto dist = graph::bfs_distances(*graph_, node);
  std::size_t reachable = 0;
  for (auto d : dist) reachable += d != graph::kUnreachable;
  return reachable > 0 ? reachable - 1 : 0;  // minus self
}

HierarchicalRouter::HierarchicalRouter(
    const graph::Graph& g, const core::ClusteringResult& clustering)
    : graph_(&g),
      clustering_(&clustering),
      heads_(clustering.heads),
      overlay_index_(g.node_count(), graph::kInvalidNode) {
  const std::size_t k = heads_.size();
  for (std::uint32_t i = 0; i < k; ++i) overlay_index_[heads_[i]] = i;

  // Collect one deterministic gateway (lexicographically smallest border
  // edge) per ordered cluster pair.
  borders_.resize(k);
  for (graph::NodeId a = 0; a < g.node_count(); ++a) {
    for (graph::NodeId b : g.neighbors(a)) {
      const graph::NodeId ha = clustering.head_index[a];
      const graph::NodeId hb = clustering.head_index[b];
      if (ha == hb) continue;
      const std::uint32_t ia = overlay_index_[ha];
      const std::uint32_t ib = overlay_index_[hb];
      auto& list = borders_[ia];
      auto it = std::find_if(list.begin(), list.end(),
                             [&](const Border& br) {
                               return br.neighbor == ib;
                             });
      if (it == list.end()) {
        list.push_back(Border{ib, a, b});
      } else if (std::make_pair(a, b) < std::make_pair(it->from, it->to)) {
        it->from = a;
        it->to = b;
      }
    }
  }

  // All-pairs next-hop matrix on the overlay (BFS per source; overlays
  // are small — tens to low hundreds of clusters).
  next_.assign(k * k, graph::kInvalidNode);
  std::vector<std::uint32_t> parent(k);
  for (std::uint32_t source = 0; source < k; ++source) {
    std::fill(parent.begin(), parent.end(), graph::kInvalidNode);
    std::queue<std::uint32_t> frontier;
    parent[source] = source;
    frontier.push(source);
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.front();
      frontier.pop();
      for (const Border& border : borders_[u]) {
        if (parent[border.neighbor] != graph::kInvalidNode) continue;
        parent[border.neighbor] = u;
        frontier.push(border.neighbor);
      }
    }
    // Derive "first hop from source toward t" by walking parents back.
    for (std::uint32_t t = 0; t < k; ++t) {
      if (t == source || parent[t] == graph::kInvalidNode) continue;
      std::uint32_t hop = t;
      while (parent[hop] != source) hop = parent[hop];
      next_[static_cast<std::size_t>(source) * k + t] = hop;
    }
  }
}

std::vector<graph::NodeId> HierarchicalRouter::intra_cluster_path(
    graph::NodeId from, graph::NodeId to, graph::NodeId cluster) const {
  std::vector<char> member(graph_->node_count(), 0);
  for (graph::NodeId p = 0; p < graph_->node_count(); ++p) {
    member[p] = clustering_->head_index[p] == cluster ? 1 : 0;
  }
  return bfs_path(*graph_, from, to, &member);
}

Route HierarchicalRouter::route(graph::NodeId src, graph::NodeId dst) const {
  if (src == dst) return Route{{src}};
  const graph::NodeId src_head = clustering_->head_index[src];
  const graph::NodeId dst_head = clustering_->head_index[dst];
  if (src_head == dst_head) {
    return Route{intra_cluster_path(src, dst, src_head)};
  }
  const std::uint32_t target = overlay_index_[dst_head];
  std::uint32_t cluster = overlay_index_[src_head];
  graph::NodeId cursor = src;
  std::vector<graph::NodeId> hops;
  while (cluster != target) {
    const std::uint32_t nc = next_cluster(cluster, target);
    if (nc == graph::kInvalidNode) return Route{};  // clusters disconnected
    const auto& list = borders_[cluster];
    const auto it = std::find_if(list.begin(), list.end(),
                                 [&](const Border& br) {
                                   return br.neighbor == nc;
                                 });
    if (it == list.end()) return Route{};  // inconsistent (should not happen)
    auto segment =
        intra_cluster_path(cursor, it->from, heads_[cluster]);
    if (segment.empty()) return Route{};
    // Append segment (skipping the duplicate joint), then the border hop.
    if (hops.empty()) {
      hops = std::move(segment);
    } else {
      hops.insert(hops.end(), segment.begin() + 1, segment.end());
    }
    hops.push_back(it->to);
    cursor = it->to;
    cluster = nc;
  }
  auto tail = intra_cluster_path(cursor, dst, dst_head);
  if (tail.empty()) return Route{};
  if (hops.empty()) {
    hops = std::move(tail);
  } else {
    hops.insert(hops.end(), tail.begin() + 1, tail.end());
  }
  return Route{std::move(hops)};
}

std::size_t HierarchicalRouter::table_entries(graph::NodeId node) const {
  const graph::NodeId my_head = clustering_->head_index[node];
  std::size_t members = 0;
  for (graph::NodeId p = 0; p < graph_->node_count(); ++p) {
    members += clustering_->head_index[p] == my_head;
  }
  // Own-cluster destinations (minus self) + one overlay entry per other
  // cluster.
  return (members - 1) + (heads_.size() - 1);
}

StretchStats compare_routers(const graph::Graph& g, const FlatRouter& flat,
                             const HierarchicalRouter& hier,
                             std::size_t pairs, util::Rng& rng) {
  StretchStats stats;
  if (g.node_count() < 2) return stats;
  double stretch_sum = 0.0;
  double flat_sum = 0.0;
  double hier_sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto src = static_cast<graph::NodeId>(rng.index(g.node_count()));
    const auto dst = static_cast<graph::NodeId>(rng.index(g.node_count()));
    if (src == dst) continue;
    const auto f = flat.route(src, dst);
    if (!f.ok()) continue;  // disconnected pair
    const auto h = hier.route(src, dst);
    if (!h.ok()) {
      ++stats.failures;
      continue;
    }
    const double stretch = static_cast<double>(h.length()) /
                           static_cast<double>(f.length());
    stretch_sum += stretch;
    stats.max_stretch = std::max(stats.max_stretch, stretch);
    flat_sum += static_cast<double>(f.length());
    hier_sum += static_cast<double>(h.length());
    ++counted;
  }
  stats.pairs = counted;
  if (counted > 0) {
    stats.mean_stretch = stretch_sum / static_cast<double>(counted);
    stats.mean_flat_length = flat_sum / static_cast<double>(counted);
    stats.mean_hier_length = hier_sum / static_cast<double>(counted);
  }
  return stats;
}

}  // namespace ssmwn::routing
