// Hierarchical routing on top of the clustering — the paper's motivating
// application ("specific routing protocols are used within and between
// the clusters", Section 1).
//
// Two routers over the same radio graph:
//
//  * FlatRouter — plain shortest-path (what the MANET flat protocols
//    compute). Optimal routes, but every node must hold state for every
//    destination: n entries per node, the very thing the introduction
//    says does not scale.
//
//  * HierarchicalRouter — two-level routing over a ClusteringResult.
//    A node holds: (a) routes inside its own cluster, (b) the overlay
//    map of cluster-heads, and (c) one gateway link per adjacent
//    cluster. A packet for another cluster travels intra-cluster to the
//    gateway, crosses the border link, and repeats — following the
//    overlay shortest path between the source's and destination's
//    heads. State per node is O(cluster size + #clusters) instead of
//    O(n). Routes pay a *stretch* factor over the flat optimum, which
//    `bench_routing` quantifies — the classic state/stretch trade-off.
#pragma once

#include <cstddef>
#include <vector>

#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssmwn::routing {

struct Route {
  /// Node sequence from source to destination inclusive; empty iff
  /// unreachable.
  std::vector<graph::NodeId> hops;

  [[nodiscard]] bool ok() const noexcept { return !hops.empty(); }
  /// Number of radio transmissions (hops.size() - 1; 0 for self-routes).
  [[nodiscard]] std::size_t length() const noexcept {
    return hops.empty() ? 0 : hops.size() - 1;
  }
};

/// True iff consecutive hops are radio neighbors and the route connects
/// src to dst. Used by tests and as a debug assertion.
[[nodiscard]] bool valid_route(const graph::Graph& g, const Route& route,
                               graph::NodeId src, graph::NodeId dst);

/// Flat shortest-path routing (baseline).
class FlatRouter {
 public:
  explicit FlatRouter(const graph::Graph& g) : graph_(&g) {}

  [[nodiscard]] Route route(graph::NodeId src, graph::NodeId dst) const;

  /// Routing-table entries a node must hold: one per reachable node.
  [[nodiscard]] std::size_t table_entries(graph::NodeId node) const;

 private:
  const graph::Graph* graph_;
};

/// Two-level cluster routing.
class HierarchicalRouter {
 public:
  /// Precomputes the overlay graph, overlay routes between heads, and
  /// per-border gateway links from `clustering`.
  HierarchicalRouter(const graph::Graph& g,
                     const core::ClusteringResult& clustering);

  [[nodiscard]] Route route(graph::NodeId src, graph::NodeId dst) const;

  /// Routing-table entries: own-cluster members + one entry per cluster
  /// (the overlay view every node keeps).
  [[nodiscard]] std::size_t table_entries(graph::NodeId node) const;

  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return heads_.size();
  }

 private:
  /// Shortest path from `from` to `to` walking only nodes of `cluster`
  /// (by head index). Returns empty if not connected inside the cluster.
  [[nodiscard]] std::vector<graph::NodeId> intra_cluster_path(
      graph::NodeId from, graph::NodeId to, graph::NodeId cluster) const;

  const graph::Graph* graph_;
  const core::ClusteringResult* clustering_;
  std::vector<graph::NodeId> heads_;            // overlay index -> head node
  std::vector<std::uint32_t> overlay_index_;    // head node -> overlay index
  /// overlay adjacency with a chosen gateway edge per cluster pair:
  /// gateway_[a][i] = {overlay neighbor, border edge (u in a, v in nbr)}.
  struct Border {
    std::uint32_t neighbor;
    graph::NodeId from;  // node inside this cluster
    graph::NodeId to;    // node inside the neighbor cluster
  };
  std::vector<std::vector<Border>> borders_;
  /// overlay BFS next-hop matrix: next_[a*k + b] = overlay index of the
  /// next cluster on the path from a to b (or invalid).
  std::vector<std::uint32_t> next_;

  [[nodiscard]] std::uint32_t next_cluster(std::uint32_t from,
                                           std::uint32_t to) const {
    return next_[static_cast<std::size_t>(from) * heads_.size() + to];
  }
};

/// Summary statistics of a route sample (for the bench harness).
struct StretchStats {
  double mean_stretch = 0.0;
  double max_stretch = 0.0;
  double mean_flat_length = 0.0;
  double mean_hier_length = 0.0;
  std::size_t pairs = 0;
  std::size_t failures = 0;  // hierarchical failed where flat succeeded
};

/// Compares the two routers over `pairs` random reachable pairs.
[[nodiscard]] StretchStats compare_routers(const graph::Graph& g,
                                           const FlatRouter& flat,
                                           const HierarchicalRouter& hier,
                                           std::size_t pairs,
                                           util::Rng& rng);

}  // namespace ssmwn::routing
