// Motivation — the scalability argument of the paper's introduction,
// quantified: hierarchical (cluster-based) routing versus flat routing.
//
// "If flat protocols are quite effective on small and medium networks,
//  they are not suitable on large scale networks due to bandwidth and
//  processing overhead. Hierarchical routing seems to be more adapted."
//
// For growing Poisson deployments we report per-node routing state
// (flat: one entry per destination; hierarchical: own cluster + one
// entry per cluster) and the path-stretch price the hierarchy pays.
#include <cstdio>

#include "bench_support.hpp"
#include "routing/routing.hpp"

int main() {
  using namespace ssmwn;
  const std::size_t runs = util::bench_runs(5);
  bench::print_header(
      "Routing — flat vs density-cluster hierarchical routing",
      "Section 1 motivation: per-node state must scale sublinearly; the "
      "price is bounded path stretch",
      runs);

  util::Rng root(util::bench_seed());
  util::Table table("Per-node routing entries and path stretch "
                    "(random geometry, mean degree ~10)");
  table.header({"n", "flat entries", "hier entries", "ratio",
                "mean stretch", "max stretch"});

  bool ok = true;
  double prev_ratio = 1.0;
  for (const std::size_t n : {250u, 500u, 1000u, 2000u}) {
    const double radius = std::sqrt(10.0 / (3.14159 * static_cast<double>(n)));
    util::RunningStats flat_entries, hier_entries, stretch, max_stretch;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = root.split();
      const auto pts = topology::uniform_points(n, rng);
      const auto g = topology::unit_disk_graph(pts, radius);
      const auto ids = topology::random_ids(n, rng);
      const auto clustering = core::cluster_density(g, ids, {});
      routing::FlatRouter flat(g);
      routing::HierarchicalRouter hier(g, clustering);

      // Sample table sizes over a few nodes (flat table_entries is a BFS).
      for (graph::NodeId p = 0; p < g.node_count();
           p += std::max<graph::NodeId>(1, g.node_count() / 16)) {
        flat_entries.add(static_cast<double>(flat.table_entries(p)));
        hier_entries.add(static_cast<double>(hier.table_entries(p)));
      }
      const auto stats = routing::compare_routers(g, flat, hier, 200, rng);
      if (stats.pairs > 0) {
        stretch.add(stats.mean_stretch);
        max_stretch.add(stats.max_stretch);
        if (stats.failures > 0) ok = false;
      }
    }
    const double ratio = hier_entries.mean() / std::max(1.0, flat_entries.mean());
    table.row({util::Table::integer(static_cast<long long>(n)),
               util::Table::num(flat_entries.mean(), 0),
               util::Table::num(hier_entries.mean(), 0),
               util::Table::num(ratio, 2),
               util::Table::num(stretch.mean(), 2),
               util::Table::num(max_stretch.mean(), 2)});
    // The state ratio must improve (shrink) as the network grows, and
    // stretch must stay bounded.
    if (n > 250 && ratio > prev_ratio + 0.02) ok = false;
    if (stretch.mean() > 3.0) ok = false;
    prev_ratio = ratio;
  }
  table.note("expected: hier/flat state ratio shrinks with n; stretch "
             "stays a small constant");
  bench::print(table);

  std::printf("Hierarchical routing scalability argument holds: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
