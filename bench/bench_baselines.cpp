// Context — the density metric against the baselines of [16] and the
// related-work section: lowest-id, highest-degree, and Max-Min d-cluster.
//
// Reports static structure (cluster count, head eccentricity, tree
// depth) and head survival under pedestrian mobility for each algorithm
// on the paper's random-geometry workload. The qualitative claim carried
// over from [16] is that density-based heads are more stable under
// mobility than degree-based ones.
#include <cstdio>

#include "bench_support.hpp"
#include "cluster/baselines.hpp"
#include "cluster/max_min.hpp"
#include "metrics/stability.hpp"
#include "mobility/mobility.hpp"

namespace {

using namespace ssmwn;

using Algorithm = core::ClusteringResult (*)(const graph::Graph&,
                                             const topology::IdAssignment&);

core::ClusteringResult run_density(const graph::Graph& g,
                                   const topology::IdAssignment& ids) {
  return core::cluster_density(g, ids, {});
}
core::ClusteringResult run_lowest_id(const graph::Graph& g,
                                     const topology::IdAssignment& ids) {
  return cluster::cluster_lowest_id(g, ids);
}
core::ClusteringResult run_degree(const graph::Graph& g,
                                  const topology::IdAssignment& ids) {
  return cluster::cluster_highest_degree(g, ids);
}
core::ClusteringResult run_max_min_2(const graph::Graph& g,
                                     const topology::IdAssignment& ids) {
  return cluster::cluster_max_min(g, ids, 2);
}

struct Entry {
  const char* label;
  Algorithm algorithm;
};

constexpr Entry kAlgorithms[] = {
    {"density (paper)", &run_density},
    {"lowest-id", &run_lowest_id},
    {"highest-degree", &run_degree},
    {"max-min d=2", &run_max_min_2},
};

}  // namespace

int main() {
  const std::size_t runs = util::bench_runs(8);
  bench::print_header(
      "Baselines — density vs lowest-id vs highest-degree vs Max-Min",
      "[16]: the density metric is more stable towards node mobility than "
      "the degree and max-min metrics",
      runs);

  util::Rng root(util::bench_seed());
  const double radius = 0.08;
  const std::size_t node_count = 600;

  util::Table table("Random geometry (n=" + std::to_string(node_count) +
                    ", R=" + util::Table::num(radius, 2) +
                    "); survival under 0-1.6 m/s over 2 s windows");
  table.header({"algorithm", "#clusters", "head ecc", "tree depth",
                "head survival %"});

  double density_survival = 0.0, degree_survival = 0.0;
  for (const auto& entry : kAlgorithms) {
    util::RunningStats clusters, ecc, depth, survival;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = root.split();
      auto points = topology::uniform_points(node_count, rng);
      const auto ids = topology::random_ids(node_count, rng);
      {
        const auto g = topology::unit_disk_graph(points, radius);
        const auto r = entry.algorithm(g, ids);
        const auto stats = metrics::analyze(g, r);
        clusters.add(static_cast<double>(stats.cluster_count));
        ecc.add(stats.mean_head_eccentricity);
        depth.add(stats.mean_tree_depth);
      }
      mobility::RandomDirection model(node_count, {0.0, 1.6}, 1000.0,
                                      rng.split());
      metrics::ChurnTracker churn;
      for (int window = 0; window < 60; ++window) {
        const auto g = topology::unit_disk_graph(points, radius);
        const auto r = entry.algorithm(g, ids);
        churn.observe(
            std::span<const char>(r.is_head.data(), r.is_head.size()));
        model.step(points, 2.0);
      }
      survival.add(churn.ratios().mean());
    }
    table.row({entry.label, util::Table::num(clusters.mean(), 1),
               util::Table::num(ecc.mean(), 2),
               util::Table::num(depth.mean(), 2),
               util::Table::num(survival.mean() * 100.0, 1)});
    if (entry.algorithm == &run_density) density_survival = survival.mean();
    if (entry.algorithm == &run_degree) degree_survival = survival.mean();
  }
  table.note("[16] claim: density survival >= degree survival");
  bench::print(table);

  const bool ok = density_survival >= degree_survival - 0.02;
  std::printf("Density-vs-degree stability claim holds: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
