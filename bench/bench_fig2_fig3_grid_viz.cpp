// Figures 2 and 3 — cluster maps on the adversarial grid (R = 0.05).
//
// Figure 2 (no DAG): one cluster spanning the whole network, diameter =
// network diameter. Figure 3 (with DAG): many compact clusters. Rendered
// here as ASCII maps — one letter per node, same letter = same cluster,
// uppercase = the cluster-head.
#include <cstdio>

#include "bench_support.hpp"
#include "graph/algorithms.hpp"

int main() {
  using namespace ssmwn;
  bench::print_header(
      "Figures 2 & 3 — grid clustering maps (R = 0.05, adversarial ids)",
      "fig 2: no DAG, a single network-wide cluster; fig 3: with DAG, "
      "several compact clusters",
      1);

  const std::size_t side = topology::grid_side_for(1000);
  const double radius = 0.05;
  const auto inst = bench::grid_instance(side, radius);
  util::Rng rng(util::bench_seed());

  // Figure 2: no DAG.
  const auto plain = core::cluster_density(inst.graph, inst.ids, {});
  const auto plain_stats = metrics::analyze(inst.graph, plain);
  std::printf("--- Figure 2: no DAG ---\n");
  std::printf("clusters: %zu   head eccentricity: %.1f   tree depth: %.1f   "
              "network diameter: %u\n\n",
              plain_stats.cluster_count, plain_stats.mean_head_eccentricity,
              plain_stats.mean_tree_depth, graph::diameter(inst.graph));
  std::fputs(metrics::render_grid_clusters(side, plain).c_str(), stdout);

  // Figure 3: with DAG.
  const auto dag = core::build_dag_ids(inst.graph, inst.ids, {}, rng);
  core::ClusterOptions opt;
  opt.use_dag_ids = true;
  const auto clustered =
      core::cluster_density(inst.graph, inst.ids, opt, dag.ids);
  const auto dag_stats = metrics::analyze(inst.graph, clustered);
  std::printf("\n--- Figure 3: with DAG (built in %zu rounds) ---\n",
              dag.rounds);
  std::printf("clusters: %zu   head eccentricity: %.1f   tree depth: %.1f\n\n",
              dag_stats.cluster_count, dag_stats.mean_head_eccentricity,
              dag_stats.mean_tree_depth);
  std::fputs(metrics::render_grid_clusters(side, clustered).c_str(), stdout);

  const bool shape_ok = plain_stats.cluster_count == 1 &&
                        dag_stats.cluster_count > 10 &&
                        dag_stats.mean_tree_depth < plain_stats.mean_tree_depth;
  std::printf("\nFig. 2/3 contrast reproduced (1 giant cluster vs many "
              "compact ones): %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
