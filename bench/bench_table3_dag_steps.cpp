// Table 3 — number of steps needed to build the DAG.
//
// Paper setup: 1000-node deployments (Poisson intensity λ=1000 and a
// grid), transmission ranges R = 0.05 .. 0.1, DAG names drawn from
// [0, δ²], conflicts resolved by the smaller-Id node redrawing. Paper
// values: ~2.0-2.2 steps on the grid, ~1.9-2.0 on random geometry,
// essentially independent of R — building the DAG is cheap.
#include <cstdio>

#include "bench_support.hpp"

namespace {

using namespace ssmwn;

constexpr double kRadii[] = {0.05, 0.06, 0.07, 0.08, 0.09, 0.1};
constexpr double kPaperGrid[] = {2.20, 2.17, 2.06, 2.01, 2.01, 2.0};
constexpr double kPaperRandom[] = {2.0, 2.0, 2.0, 1.9, 2.0, 1.9};

}  // namespace

int main() {
  const std::size_t runs = util::bench_runs(40);
  bench::print_header(
      "Table 3 — steps to build the DAG (1000 nodes, names in [0, d^2])",
      "grid: 2.20 2.17 2.06 2.01 2.01 2.0 | random: 2.0 2.0 2.0 1.9 2.0 1.9",
      runs);

  util::Rng root(util::bench_seed());
  const std::size_t side = topology::grid_side_for(1000);

  util::Table table("Mean DAG construction rounds");
  table.header({"R", "grid (paper)", "grid (measured)", "random (paper)",
                "random (measured)"});
  bool shape_ok = true;
  for (std::size_t i = 0; i < std::size(kRadii); ++i) {
    const double radius = kRadii[i];

    util::RunningStats grid_rounds;
    {
      const auto inst = bench::grid_instance(side, radius);
      for (std::size_t run = 0; run < runs; ++run) {
        util::Rng rng = root.split();
        const auto dag = core::build_dag_ids(inst.graph, inst.ids, {}, rng);
        grid_rounds.add(static_cast<double>(dag.rounds));
        if (!dag.converged) shape_ok = false;
      }
    }

    util::RunningStats random_rounds;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = root.split();
      const auto inst = bench::poisson_instance(1000.0, radius, rng);
      if (inst.graph.node_count() == 0) continue;
      const auto dag = core::build_dag_ids(inst.graph, inst.ids, {}, rng);
      random_rounds.add(static_cast<double>(dag.rounds));
      if (!dag.converged) shape_ok = false;
    }

    table.row({util::Table::num(radius, 2), util::Table::num(kPaperGrid[i]),
               util::Table::num(grid_rounds.mean()),
               util::Table::num(kPaperRandom[i]),
               util::Table::num(random_rounds.mean())});
    // Shape check: cheap and flat — a small constant, independent of R.
    if (grid_rounds.mean() < 1.0 || grid_rounds.mean() > 3.5) shape_ok = false;
    if (random_rounds.mean() < 1.0 || random_rounds.mean() > 3.5) {
      shape_ok = false;
    }
  }
  table.note("shape target: ~2 rounds, flat in R, same on both topologies");
  bench::print(table);

  std::printf("DAG construction is ~2 steps and flat in R: %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
