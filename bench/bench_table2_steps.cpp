// Table 2 — the knowledge schedule of the distributed protocol.
//
// "Step 1: 1-neighbors -> neighborhood table. Step 2: + 2-neighbors ->
//  its density. Step 3: + neighbors' density -> its father." The head
// value then travels one hop per step down the clusterization tree.
//
// We run the message-passing protocol from a cold start on random
// geometry and report, after each step, the fraction of nodes whose
// neighborhood table / density / parent / head already equal the stable
// (oracle) values. The paper's schedule predicts the 100% column
// thresholds: neighbors at step 1, density at step 2, parent at step 3,
// head at step 3 + tree depth.
#include <cstdio>

#include "bench_support.hpp"
#include "core/protocol.hpp"
#include "graph/forest.hpp"
#include "sim/network.hpp"

namespace {

using namespace ssmwn;

struct Fractions {
  double neighbors = 0.0;
  double density = 0.0;
  double parent = 0.0;
  double head = 0.0;
};

Fractions measure(const core::DensityProtocol& protocol,
                  const graph::Graph& g, const topology::IdAssignment& ids,
                  const core::ClusteringResult& oracle) {
  Fractions f;
  const auto n = static_cast<double>(g.node_count());
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    const auto& s = protocol.state(p);
    bool nbrs_ok = s.cache.size() == g.degree(p);
    if (nbrs_ok) {
      for (graph::NodeId q : g.neighbors(p)) {
        if (!s.cache.contains(ids[q])) {
          nbrs_ok = false;
          break;
        }
      }
    }
    if (nbrs_ok) f.neighbors += 1.0;
    if (s.metric_valid && s.metric == oracle.metric[p]) f.density += 1.0;
    if (s.parent_valid && s.parent == ids[oracle.parent[p]]) f.parent += 1.0;
    if (s.head_valid && s.head == oracle.head_id[p]) f.head += 1.0;
  }
  f.neighbors /= n;
  f.density /= n;
  f.parent /= n;
  f.head /= n;
  return f;
}

}  // namespace

int main() {
  const std::size_t runs = util::bench_runs(20);
  bench::print_header(
      "Table 2 — what a node can compute after each step",
      "step 1: neighborhood table; step 2: density; step 3: father; "
      "head after 3 + tree depth",
      runs);

  util::Rng root(util::bench_seed());
  const std::size_t max_steps = 12;
  std::vector<Fractions> totals(max_steps + 1);
  util::RunningStats depth_stats;

  for (std::size_t run = 0; run < runs; ++run) {
    util::Rng rng = root.split();
    const auto inst = bench::poisson_instance(400.0, 0.08, rng);
    if (inst.graph.node_count() == 0) continue;
    const auto oracle = core::cluster_density(inst.graph, inst.ids, {});
    const auto forest = oracle.forest();
    std::size_t depth = 0;
    for (graph::NodeId h : oracle.heads) {
      depth = std::max<std::size_t>(depth, forest.tree_depth(h));
    }
    depth_stats.add(static_cast<double>(depth));

    core::ProtocolConfig config;
    config.delta_hint = inst.graph.max_degree();
    core::DensityProtocol protocol(inst.ids, config, rng.split());
    sim::PerfectDelivery loss;
    sim::Network network(inst.graph, protocol, loss);
    for (std::size_t step = 1; step <= max_steps; ++step) {
      network.step();
      const auto f = measure(protocol, inst.graph, inst.ids, oracle);
      totals[step].neighbors += f.neighbors;
      totals[step].density += f.density;
      totals[step].parent += f.parent;
      totals[step].head += f.head;
    }
  }

  util::Table table(
      "Fraction of nodes with stable knowledge after k steps (mean over "
      "runs; Poisson(400), R=0.08, cold start)");
  table.header({"step", "neighbor table", "density", "father", "cluster-head"});
  const auto denom = static_cast<double>(runs);
  for (std::size_t step = 1; step <= max_steps; ++step) {
    table.row({util::Table::integer(static_cast<long long>(step)),
               util::Table::num(totals[step].neighbors / denom, 3),
               util::Table::num(totals[step].density / denom, 3),
               util::Table::num(totals[step].parent / denom, 3),
               util::Table::num(totals[step].head / denom, 3)});
  }
  table.note("paper schedule: column reaches 1.0 at steps 1 / 2 / 3 / 3+depth");
  table.note("mean clusterization tree depth here: " +
             util::Table::num(depth_stats.mean(), 2));
  bench::print(table);

  const bool schedule_holds =
      totals[1].neighbors / denom > 0.999 &&
      totals[2].density / denom > 0.999 && totals[3].parent / denom > 0.999 &&
      totals[max_steps].head / denom > 0.999;
  std::printf("Knowledge schedule of Table 2 holds: %s\n",
              schedule_holds ? "yes" : "NO");
  return schedule_holds ? 0 : 1;
}
