// Table 4 — cluster features on a random geometric graph.
//
// Paper setup: Poisson(λ=1000) in the unit square, R in {0.05, 0.08,
// 0.1}, identifiers uniformly random; metrics: number of clusters, mean
// cluster-head eccentricity inside its cluster, mean clusterization tree
// length — each with and without the DAG. Paper values:
//
//                      R=0.05          R=0.08          R=0.1
//                    DAG   noDAG     DAG   noDAG     DAG   noDAG
//   # clusters       61.0  61.4      19.2  19.5      11.7  11.7
//   eccentricity      2.6   2.6       3.1   3.1       3.2   3.2
//   tree length       2.7   2.7       3.3   3.3       3.5   3.5
//
// The headline shape: with *well-distributed random identifiers* the DAG
// changes nothing (ties are rare), cluster count falls as R grows, and
// eccentricity/tree length stay small and nearly flat.
#include <cstdio>

#include "bench_support.hpp"

namespace {

using namespace ssmwn;

struct PaperRow {
  double radius;
  double clusters_dag, clusters_plain;
  double ecc_dag, ecc_plain;
  double tree_dag, tree_plain;
};

constexpr PaperRow kPaper[] = {
    {0.05, 61.0, 61.4, 2.6, 2.6, 2.7, 2.7},
    {0.08, 19.2, 19.5, 3.1, 3.1, 3.3, 3.3},
    {0.10, 11.7, 11.7, 3.2, 3.2, 3.5, 3.5},
};

}  // namespace

int main() {
  const std::size_t runs = util::bench_runs(30);
  bench::print_header(
      "Table 4 — clusters features on a random geometric graph "
      "(Poisson(1000), random ids)",
      "see header of bench/bench_table4_random_geometry.cpp", runs);

  util::Rng root(util::bench_seed());
  util::Table table("Measured vs paper (mean over runs)");
  table.header({"R", "variant", "#clusters (paper)", "#clusters",
                "ecc (paper)", "ecc", "tree (paper)", "tree"});

  bool shape_ok = true;
  double prev_clusters_dag = 1e9;
  for (const auto& row : kPaper) {
    bench::AveragedStats with_dag, no_dag;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = root.split();
      const auto inst = bench::poisson_instance(1000.0, row.radius, rng);
      if (inst.graph.node_count() == 0) continue;
      core::ClusterOptions dag_opt;
      dag_opt.use_dag_ids = true;
      bench::accumulate_run(inst, dag_opt, rng, with_dag);
      bench::accumulate_run(inst, {}, rng, no_dag);
    }
    table.row({util::Table::num(row.radius, 2), "with DAG",
               util::Table::num(row.clusters_dag, 1),
               util::Table::num(with_dag.clusters.mean(), 1),
               util::Table::num(row.ecc_dag, 1),
               util::Table::num(with_dag.eccentricity.mean(), 1),
               util::Table::num(row.tree_dag, 1),
               util::Table::num(with_dag.tree_depth.mean(), 1)});
    table.row({"", "no DAG", util::Table::num(row.clusters_plain, 1),
               util::Table::num(no_dag.clusters.mean(), 1),
               util::Table::num(row.ecc_plain, 1),
               util::Table::num(no_dag.eccentricity.mean(), 1),
               util::Table::num(row.tree_plain, 1),
               util::Table::num(no_dag.tree_depth.mean(), 1)});

    // Shape checks: (1) DAG vs no-DAG nearly identical on random ids;
    // (2) cluster count strictly decreasing in R; (3) eccentricity and
    // tree depth small (single digits) and close to each other.
    const double rel_gap =
        std::abs(with_dag.clusters.mean() - no_dag.clusters.mean()) /
        std::max(1.0, no_dag.clusters.mean());
    if (rel_gap > 0.1) shape_ok = false;
    if (with_dag.clusters.mean() >= prev_clusters_dag) shape_ok = false;
    prev_clusters_dag = with_dag.clusters.mean();
    if (with_dag.eccentricity.mean() > 8.0 ||
        with_dag.tree_depth.mean() > 8.0) {
      shape_ok = false;
    }
  }
  table.note("shape targets: DAG ~= no-DAG on random ids; #clusters falls "
             "with R; ecc/tree stay small and flat");
  bench::print(table);

  std::printf("Table 4 shape reproduced: %s\n", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
