// Spatially sharded step-engine throughput toward million-node runs.
//
// The sharded engine exists so one synchronous step over the whole
// field stays cheap when the field no longer fits one worker's cache:
// nodes are renumbered cell-major (graph::plan_spatial_shards), each
// shard owns a contiguous range plus its own frame arena, and all
// cross-shard traffic rides per-shard-pair mailboxes. This bench runs
// the full equivalence gate first — the sharded engine must be
// bit-identical to sim::Network, or the numbers are meaningless — then
// measures steady-state steps/sec for both engines on random-geometric
// deployments at n ∈ {10k, 100k, 1M, 10M}.
//
// Environment:
//   SSMWN_SHARD_MAX_N  cap on n (default 1000000; CI smoke uses 10000)
//   SSMWN_SHARDS       shard count for the sharded rows (default 16)
//   SSMWN_THREADS      step-engine workers (default: hardware
//                      concurrency; 1 on the reference machine)
//   SSMWN_SEED         experiment seed
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench_support.hpp"
#include "core/protocol.hpp"
#include "graph/partition.hpp"
#include "sim/network.hpp"
#include "sim/sharded_network.hpp"

namespace {

using namespace ssmwn;

core::DensityProtocol make_protocol(const bench::Instance& inst,
                                    const util::Rng& rng) {
  util::Rng local = rng;  // identical protocol state for every engine
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, inst.graph.max_degree());
  return core::DensityProtocol(inst.ids, config, local.split());
}

/// Steady-state steps/sec over an already constructed engine.
template <typename Network>
double time_steps(Network& network, std::size_t warm, std::size_t steps) {
  network.run(warm);
  const auto start = std::chrono::steady_clock::now();
  network.run(steps);
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(steps) / elapsed;
}

/// Renumbers `inst` cell-major for `shards` spatial shards. Falls back
/// to contiguous chunks when the plan degenerates (n = 0).
struct ShardedInstance {
  bench::Instance instance;
  std::vector<std::size_t> bounds;
};

ShardedInstance shard_instance(const bench::Instance& inst, double radius,
                               std::size_t shards) {
  ShardedInstance out;
  const auto plan = graph::plan_spatial_shards(inst.points, radius, shards);
  if (!plan.valid()) {
    out.instance = inst;
    out.bounds =
        graph::plan_contiguous_shards(inst.graph.node_count(), shards).bounds;
    return out;
  }
  out.instance.points = graph::permuted(plan, inst.points);
  out.instance.graph = graph::permute_graph(inst.graph, plan);
  out.instance.ids = graph::permuted(plan, inst.ids);
  out.bounds = plan.bounds;
  return out;
}

/// The gate: lockstep steps on a mid-size world must stay
/// bit-identical (state and message counters) or the bench aborts —
/// a fast sharded engine that drifts is a bug, not a result. Three
/// engines run side by side: the legacy flat engine (no fast paths) as
/// the reference, the arena flat engine, and the sharded engine. After
/// 20 clean steps a mass fault is injected into all three so the
/// recovery window exercises the redelivery fast paths — including the
/// delta-encoded frames, whose grading counters must also agree across
/// the two delta-capable engines and must actually fire.
bool equivalence_gate(util::Rng& rng, std::size_t shards, unsigned threads) {
  const auto inst = bench::poisson_instance(2000.0, 0.035, rng);
  const auto sharded_inst = shard_instance(inst, 0.035, shards);
  auto reference = make_protocol(sharded_inst.instance, rng);
  auto arena = make_protocol(sharded_inst.instance, rng);
  auto candidate = make_protocol(sharded_inst.instance, rng);
  sim::PerfectDelivery loss_a, loss_b, loss_c;
  sim::Network net_ref(sharded_inst.instance.graph, reference, loss_a, 1);
  net_ref.set_legacy_engine(true);
  sim::Network net_arena(sharded_inst.instance.graph, arena, loss_b, 1);
  sim::ShardedNetwork net_shard(sharded_inst.instance.graph, candidate,
                                loss_c, sharded_inst.bounds, threads);
  const auto check = [&](std::size_t s, const core::DensityProtocol& other,
                         const char* label) -> bool {
    if (const auto div = core::first_divergent_node(reference, other)) {
      std::fprintf(stderr,
                   "EQUIVALENCE FAILURE (%s) at step %zu, node %u:\n%s",
                   label, s, static_cast<unsigned>(*div),
                   core::describe_divergence(reference, other, *div).c_str());
      return false;
    }
    return true;
  };
  for (std::size_t s = 0; s < 35; ++s) {
    if (s == 20) {
      // One mass fault, identically seeded for all three protocols, so
      // the remaining steps replay the recovery regime where the
      // payload/delta fast paths carry the traffic.
      util::Rng f1(20050612), f2(20050612), f3(20050612);
      reference.corrupt_fraction(f1, 0.2);
      arena.corrupt_fraction(f2, 0.2);
      candidate.corrupt_fraction(f3, 0.2);
    }
    net_ref.step();
    net_arena.step();
    net_shard.step();
    if (!check(s, arena, "arena flat") || !check(s, candidate, "sharded")) {
      return false;
    }
  }
  if (net_ref.messages_delivered() != net_arena.messages_delivered() ||
      net_ref.messages_delivered() != net_shard.messages_delivered()) {
    std::fprintf(stderr, "EQUIVALENCE FAILURE: message counters diverged\n");
    return false;
  }
  if (net_arena.delta_rows_graded() == 0 ||
      net_arena.delta_rows_graded() != net_shard.delta_rows_graded()) {
    std::fprintf(stderr,
                 "EQUIVALENCE FAILURE: delta-frame grading diverged "
                 "(arena %llu, sharded %llu; both must be nonzero)\n",
                 static_cast<unsigned long long>(net_arena.delta_rows_graded()),
                 static_cast<unsigned long long>(net_shard.delta_rows_graded()));
    return false;
  }
  std::printf("equivalence gate: PASS (n=%zu, %zu shards, %u threads, "
              "35 steps bit-identical across legacy/arena/sharded, "
              "%llu delta-graded rows agree)\n\n",
              sharded_inst.instance.graph.node_count(), shards, threads,
              static_cast<unsigned long long>(net_arena.delta_rows_graded()));
  return true;
}

std::size_t steps_for(std::size_t n) {
  if (n >= 1000000) return 3;
  if (n >= 100000) return 5;
  return 20;
}

/// Both engines' cost now depends on the regime (the redelivery fast
/// paths collapse deliveries of settled rows), so one number no longer
/// characterizes a step. Measured per engine, in one run:
///   active — steps 3..5: caches full, id sequences held, but nearly
///            every digest payload still churning (the post-fault /
///            post-cold-start recovery regime);
///   steady — steps 10+: the clustering has converged (metric-degree-8
///            Poisson worlds settle ≈99% of frame rows by step 10), the
///            regime the old warm-up never reached at n = 1M.
struct RegimeSps {
  double active = 0.0;
  double steady = 0.0;
};

template <typename Network>
RegimeSps time_regimes(Network& network, std::size_t steps) {
  RegimeSps out;
  out.active = time_steps(network, 3, 3);
  out.steady = time_steps(network, 4, steps);
  return out;
}

}  // namespace

int main() {
  const auto max_n = static_cast<std::size_t>(
      util::env_int("SSMWN_SHARD_MAX_N", 1000000));
  const auto shards = static_cast<std::size_t>(
      util::env_int("SSMWN_SHARDS", 16));
  auto threads = static_cast<unsigned>(util::env_int("SSMWN_THREADS", 0));
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  bench::print_header(
      "Sharded — spatial shards + boundary mailboxes at scale",
      "Cell-major renumbered shards, each with its own frame arena; "
      "cross-shard frames ride per-shard-pair mailboxes "
      "(docs/ARCHITECTURE.md §8). Bit-identical to sim::Network — gated "
      "below before any timing",
      1);

  util::Rng root(util::bench_seed());
  util::Rng gate_rng = root.split();
  if (!equivalence_gate(gate_rng, shards, threads)) return 1;

  bench::JsonReport json("sharded_steps");
  util::Table table("Steps per second by regime (higher is better)");
  const std::string shard_tag =
      std::to_string(shards) + "s/" + std::to_string(threads) + "t";
  table.header({"n", "mean deg", "unsharded active", "unsharded steady",
                "sharded " + shard_tag + " active",
                "sharded " + shard_tag + " steady"});

  const std::size_t sizes[] = {10000, 100000, 1000000, 10000000};
  for (const std::size_t n : sizes) {
    if (n > max_n) continue;
    util::Rng rng = root.split();
    // Mean degree 8 — the regime where clustering is informative and a
    // step is delivery-dominated.
    const double radius =
        std::sqrt(8.0 / (3.14159 * static_cast<double>(n)));
    const auto inst =
        bench::poisson_instance(static_cast<double>(n), radius, rng);
    const auto sharded_inst = shard_instance(inst, radius, shards);
    const std::size_t nodes = sharded_inst.instance.graph.node_count();
    const double mean_degree =
        nodes == 0
            ? 0.0
            : 2.0 *
                  static_cast<double>(sharded_inst.instance.graph.edge_count()) /
                  static_cast<double>(nodes);
    const std::size_t steps = steps_for(n);

    RegimeSps flat;
    {
      auto protocol = make_protocol(sharded_inst.instance, rng);
      sim::PerfectDelivery loss;
      sim::Network network(sharded_inst.instance.graph, protocol, loss, 1);
      flat = time_regimes(network, steps);
    }
    RegimeSps shard;
    {
      auto protocol = make_protocol(sharded_inst.instance, rng);
      sim::PerfectDelivery loss;
      sim::ShardedNetwork network(sharded_inst.instance.graph, protocol,
                                  loss, sharded_inst.bounds, threads);
      shard = time_regimes(network, steps);
    }

    table.row({util::Table::integer(static_cast<long long>(nodes)),
               util::Table::num(mean_degree, 1),
               util::Table::num(flat.active, 2),
               util::Table::num(flat.steady, 2),
               util::Table::num(shard.active, 2),
               util::Table::num(shard.steady, 2)});
    json.add("poisson/unsharded-active", nodes, 1, "steps/s", flat.active);
    json.add("poisson/unsharded", nodes, 1, "steps/s", flat.steady);
    json.add("poisson/sharded-active", nodes, threads, "steps/s",
             shard.active);
    json.add("poisson/sharded", nodes, threads, "steps/s", shard.steady);
  }

  table.note("both engines step the identical protocol state on the "
             "cell-major renumbered world; the sharded rows use " +
             std::to_string(shards) + " spatial shards");
  table.note("active = steps 3..5 (recovery regime: full payload churn "
             "over settled id sequences); steady = steps 10 onward (the "
             "converged regime the table's former single number claimed "
             "but, at n = 1M, never warmed up to)");
  table.note("single-worker machines measure the sharding overhead "
             "(mailboxes + per-shard arenas); the parallel win needs "
             "SSMWN_THREADS > 1");
  bench::print(table);
  json.write();
  return 0;
}
