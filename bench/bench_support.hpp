// Shared helpers for the benchmark harness.
//
// Conventions (see DESIGN.md §4): every bench binary runs with no
// arguments, prints the paper's reference values next to measured ones,
// and honors SSMWN_RUNS (averaging, paper used 1000) and SSMWN_SEED.
#pragma once

#include <charconv>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "core/dag_ids.hpp"
#include "core/density.hpp"
#include "graph/graph.hpp"
#include "metrics/cluster_metrics.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/atomic_file.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ssmwn::bench {

/// One random-geometry deployment: Poisson(λ) points in the unit square,
/// a UDG of range `radius`, and uniformly random protocol identifiers.
struct Instance {
  std::vector<topology::Point> points;
  graph::Graph graph;
  topology::IdAssignment ids;
};

inline Instance poisson_instance(double lambda, double radius,
                                 util::Rng& rng) {
  Instance inst;
  inst.points = topology::poisson_points(lambda, rng);
  inst.graph = topology::unit_disk_graph(inst.points, radius);
  inst.ids = topology::random_ids(inst.graph.node_count(), rng);
  return inst;
}

/// The paper's adversarial grid: side×side nodes, identifiers increasing
/// left to right and bottom to top (sequential over the row-major grid).
inline Instance grid_instance(std::size_t side, double radius) {
  Instance inst;
  inst.points = topology::grid_points(side);
  inst.graph = topology::unit_disk_graph(inst.points, radius);
  inst.ids = topology::sequential_ids(inst.graph.node_count());
  return inst;
}

/// Aggregated cluster statistics over repeated deployments.
struct AveragedStats {
  util::RunningStats clusters;
  util::RunningStats eccentricity;
  util::RunningStats tree_depth;
  util::RunningStats cluster_size;
};

/// Clusters one instance (building DAG names first when requested) and
/// feeds the resulting stats into `out`.
inline void accumulate_run(const Instance& inst,
                           const core::ClusterOptions& options,
                           util::Rng& rng, AveragedStats& out) {
  core::ClusteringResult result;
  if (options.use_dag_ids) {
    const auto dag = core::build_dag_ids(inst.graph, inst.ids, {}, rng);
    result = core::cluster_density(inst.graph, inst.ids, options, dag.ids);
  } else {
    result = core::cluster_density(inst.graph, inst.ids, options);
  }
  const auto stats = metrics::analyze(inst.graph, result);
  out.clusters.add(static_cast<double>(stats.cluster_count));
  out.eccentricity.add(stats.mean_head_eccentricity);
  out.tree_depth.add(stats.mean_tree_depth);
  out.cluster_size.add(stats.mean_cluster_size);
}

inline void print(const util::Table& table) {
  std::fputs(table.render().c_str(), stdout);
  std::fputc('\n', stdout);
}

/// Machine-readable twin of the human bench tables. Each record is one
/// measured value; `write()` emits `BENCH_<bench>.json` (into
/// $SSMWN_BENCH_JSON_DIR, default cwd) so CI can archive the perf
/// trajectory as an artifact instead of scraping table text. Numbers go
/// through std::to_chars — locale-free, round-trip exact.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  void add(std::string name, std::size_t n, unsigned threads,
           std::string metric, double value) {
    records_.push_back(
        {std::move(name), std::move(metric), n, threads, value});
  }

  /// Best effort: benches must not fail because the cwd is read-only.
  /// Published via temp-file + atomic rename (util::AtomicFile), so CI
  /// archiving a BENCH_*.json concurrently with (or right after) an
  /// interrupted bench can never pick up a torn, half-written report.
  void write() const {
    const std::string dir = util::env_string("SSMWN_BENCH_JSON_DIR", ".");
    const std::string path = dir + "/BENCH_" + bench_ + ".json";
    std::ostringstream out;
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"records\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      char buf[64];
      const auto res = std::to_chars(buf, buf + sizeof buf - 1, r.value);
      *res.ptr = '\0';
      out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << r.name
          << "\", \"n\": " << r.n << ", \"threads\": " << r.threads
          << ", \"metric\": \"" << r.metric << "\", \"value\": " << buf
          << "}";
    }
    out << "\n  ]\n}\n";
    try {
      util::atomic_write_file(path, out.str());
    } catch (const std::exception&) {
      std::fprintf(stderr, "note: cannot write %s; skipping JSON report\n",
                   path.c_str());
      return;
    }
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  struct Record {
    std::string name;
    std::string metric;
    std::size_t n = 0;
    unsigned threads = 1;
    double value = 0.0;
  };
  std::string bench_;
  std::vector<Record> records_;
};

inline void print_header(const std::string& title,
                         const std::string& paper_ref, std::size_t runs) {
  std::printf("%s\n", std::string(72, '=').c_str());
  std::printf("%s\n", title.c_str());
  std::printf("Paper reference: %s\n", paper_ref.c_str());
  std::printf("Runs per configuration: %zu (set SSMWN_RUNS to change; the "
              "paper averaged 1000)\n",
              runs);
  std::printf("%s\n\n", std::string(72, '=').c_str());
}

}  // namespace ssmwn::bench
