// Quiescence-aware stepping throughput: dirty-region vs full sweeps on
// a converged live-mobility run.
//
// The dirty stepper (sim/activity.hpp + Network::step_dirty) claims
// that once the protocol has converged, a mobility tick that perturbs a
// handful of links should cost O(affected region), not O(n·degree):
// only nodes whose closed neighborhood changed re-run their rules, and
// activity propagates exactly one hop per tick while it still changes
// anything. This bench plays the SAME recorded delta stream through two
// identically seeded protocol+engine pairs — one full, one dirty — and
// measures steady-state ticks/s at n ∈ {1k, 10k, 100k}. The run doubles
// as a bitwise-equivalence gate: after the timed window the two
// populations must be bit-identical (shared variables, caches, RNG
// state), so a stepping bug fails the binary rather than flattering it.
//
// Scenario: one node per thousand is mobile (pedestrian, 0-1.6 m/s);
// the rest form a static converged mesh. This is the regime the dirty
// stepper targets — couriers moving through a deployed sensor field.
// When EVERY node moves at once the per-tick link churn is spread over
// the whole area and the dirty region covers the graph, so dirty
// stepping degenerates to full stepping plus bookkeeping (measured
// ~0.85x); that regime belongs to the full stepper and the docs say so.
//
// Environment:
//   SSMWN_DIRTY_MAX_N  cap on n (default 100000; CI smoke uses 1000)
//   SSMWN_SEED         experiment seed
#include <chrono>
#include <span>
#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_support.hpp"
#include "core/protocol.hpp"
#include "graph/dynamic.hpp"
#include "graph/graph.hpp"
#include "mobility/mobility.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "topology/incremental.hpp"

namespace {

using namespace ssmwn;

// Converge for kSettleSteps on the static graph, replay kWarmTicks
// deltas untimed (the dirty activity set reaches steady state), then
// time kTimedTicks. Both sides run the identical schedule.
constexpr std::size_t kSettleSteps = 40;
constexpr std::size_t kWarmTicks = 10;

std::size_t ticks_for(std::size_t n) {
  if (n >= 100000) return 20;
  if (n >= 10000) return 100;
  return 400;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct SideResult {
  double ticks_per_s = 0.0;
  std::uint64_t nodes_stepped = 0;
  std::uint64_t nodes_skipped = 0;
};

/// Plays settle + warm-up + timed window for one stepping mode against
/// a private copy of the graph, patched tick by tick from the shared
/// recorded delta stream. The protocol and graph live in the caller's
/// stores so the final populations can be diffed after both sides ran.
SideResult run_side(const graph::Graph& initial,
                    const topology::IdAssignment& ids,
                    const std::vector<graph::EdgeDelta>& deltas,
                    std::uint64_t protocol_seed, sim::Stepping stepping,
                    std::optional<core::DensityProtocol>& protocol_store,
                    std::optional<graph::DynamicGraph>& graph_store) {
  graph_store.emplace();
  graph_store->reset(initial);

  core::ProtocolConfig pconfig;
  pconfig.delta_hint = std::max<std::uint64_t>(2, initial.max_degree());
  util::Rng protocol_rng(protocol_seed);
  protocol_store.emplace(ids, pconfig, protocol_rng);

  sim::PerfectDelivery perfect;
  sim::Network network(graph_store->view(), *protocol_store, perfect, 1);
  network.set_stepping(stepping);

  for (std::size_t s = 0; s < kSettleSteps; ++s) network.step();
  for (std::size_t t = 0; t < kWarmTicks && t < deltas.size(); ++t) {
    graph_store->apply_delta(deltas[t]);
    network.apply_topology_delta(deltas[t]);
    network.step();
  }

  SideResult out;
  const std::uint64_t stepped_before = network.activity().nodes_stepped();
  const std::uint64_t skipped_before = network.activity().nodes_skipped();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = kWarmTicks; t < deltas.size(); ++t) {
    graph_store->apply_delta(deltas[t]);
    network.apply_topology_delta(deltas[t]);
    network.step();
  }
  const double elapsed = seconds_since(start);
  out.ticks_per_s =
      static_cast<double>(deltas.size() - kWarmTicks) / elapsed;
  out.nodes_stepped = network.activity().nodes_stepped() - stepped_before;
  out.nodes_skipped = network.activity().nodes_skipped() - skipped_before;
  return out;
}

}  // namespace

int main() {
  const auto max_n =
      static_cast<std::size_t>(util::env_int("SSMWN_DIRTY_MAX_N", 100000));
  const double dt_s = 0.1;
  const double world_m = 1000.0;
  const mobility::SpeedRange speeds{0.0, 1.6};

  bench::print_header(
      "Dirty-region stepping — quiescence-aware vs full protocol sweeps",
      "Steady-state cost of a converged protocol under live mobility "
      "(radius set for mean degree ~10 at every n)",
      1);

  util::Rng root(util::bench_seed());
  bench::JsonReport json("dirty_stepping");
  util::Table table("Protocol ticks per second, converged + live mobility "
                    "(higher is better)");
  table.header({"n", "mean deg", "full t/s", "dirty t/s", "speedup",
                "stepped", "skipped"});

  bool equivalent = true;
  const std::size_t sizes[] = {1000, 10000, 100000};
  for (const std::size_t n : sizes) {
    if (n > max_n) continue;
    // Density held constant across n: mean degree ≈ 10.
    const double radius =
        std::sqrt(10.0 / (3.14159265358979 * static_cast<double>(n)));

    util::Rng rng = root.split();
    auto points = topology::uniform_points(n, rng);
    const auto ids = topology::random_ids(n, rng);
    const std::uint64_t protocol_seed = rng();
    const std::size_t movers = std::max<std::size_t>(1, n / 1000);

    // Record the shared delta stream once; both sides replay it, so the
    // mobility/topology cost cannot favor either stepper. Only the first
    // `movers` points move — the mover owns exactly that prefix.
    topology::LiveTopology live(points, radius);
    const graph::Graph initial = live.graph();
    mobility::RandomDirection mover(movers, speeds, world_m, rng.split());
    std::vector<graph::EdgeDelta> deltas;
    deltas.reserve(kWarmTicks + ticks_for(n));
    for (std::size_t t = 0; t < kWarmTicks + ticks_for(n); ++t) {
      mover.step(std::span(points).first(movers), dt_s);
      deltas.push_back(live.update(points));
    }

    std::optional<core::DensityProtocol> full_store, dirty_store;
    std::optional<graph::DynamicGraph> full_graph, dirty_graph;
    const SideResult full =
        run_side(initial, ids, deltas, protocol_seed, sim::Stepping::kFull,
                 full_store, full_graph);
    const SideResult dirty =
        run_side(initial, ids, deltas, protocol_seed, sim::Stepping::kDirty,
                 dirty_store, dirty_graph);

    // Equivalence gate: same seeds, same deltas, same tick count — the
    // two populations must be bit-identical down to RNG state.
    if (const auto node =
            core::first_divergent_node(*full_store, *dirty_store)) {
      std::printf("FAIL: dirty stepping diverged from full at n=%zu "
                  "node=%u\n%s\n",
                  n, static_cast<unsigned>(*node),
                  core::describe_divergence(*full_store, *dirty_store, *node)
                      .c_str());
      equivalent = false;
    }

    const double mean_degree = 2.0 *
                               static_cast<double>(initial.edge_count()) /
                               static_cast<double>(n);
    const double speedup = dirty.ticks_per_s / full.ticks_per_s;
    table.row({util::Table::integer(static_cast<long long>(n)),
               util::Table::num(mean_degree, 1),
               util::Table::num(full.ticks_per_s, 1),
               util::Table::num(dirty.ticks_per_s, 1),
               util::Table::num(speedup, 2) + "x",
               util::Table::integer(
                   static_cast<long long>(dirty.nodes_stepped)),
               util::Table::integer(
                   static_cast<long long>(dirty.nodes_skipped))});
    json.add("full", n, 1, "ticks/s", full.ticks_per_s);
    json.add("dirty", n, 1, "ticks/s", dirty.ticks_per_s);
    json.add("dirty", n, 1, "speedup", speedup);
  }

  table.note("both steppers replay the identical recorded delta stream "
             "from identical protocol seeds; the binary exits nonzero if "
             "their final states differ in any bit");
  table.note("'stepped'/'skipped' = dirty-side rule sweeps run vs elided "
             "in the timed window; 1 mover per 1000 nodes, pedestrian "
             "0-1.6 m/s, dt = 0.1 s");
  bench::print(table);
  json.write();
  return equivalent ? 0 : 1;
}
