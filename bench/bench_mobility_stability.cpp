// Section 5, final experiment — cluster-head stability under mobility.
//
// Paper setup: nodes move randomly at a randomly chosen speed for 15
// minutes; every 2 seconds the clustering is recomputed and the
// percentage of cluster-heads still heads is recorded. Paper values:
//
//   speed 0-1.6 m/s (pedestrians):  ~82 % with the Section 4.3 rules,
//                                   ~78 % without
//   speed 0-10 m/s (cars):          ~31 % with, ~25 % without
//
// Shape targets: the improved rules (incumbency + fusion) strictly
// increase head survival at both speeds, and faster movement is much
// worse than slower. The unit square is scaled to 1 km x 1 km
// (DESIGN.md deviation D3). A degree-metric baseline row contextualizes
// the density metric's stability claim from [16].
#include <cstdio>

#include "bench_support.hpp"
#include "cluster/baselines.hpp"
#include "metrics/stability.hpp"
#include "mobility/mobility.hpp"

namespace {

using namespace ssmwn;

struct Scenario {
  const char* label;
  mobility::SpeedRange speeds;
  double paper_improved;  // percent
  double paper_basic;     // percent
};

constexpr double kWorldMeters = 1000.0;
constexpr double kWindowSeconds = 2.0;
constexpr double kDurationSeconds = 15.0 * 60.0;

struct Ratios {
  util::RunningStats basic;
  util::RunningStats improved;
  util::RunningStats degree;
};

Ratios run_scenario(const Scenario& scenario, double radius,
                    std::size_t node_count, std::size_t runs,
                    util::Rng& root) {
  Ratios out;
  for (std::size_t run = 0; run < runs; ++run) {
    util::Rng rng = root.split();
    auto points = topology::uniform_points(node_count, rng);
    const auto ids = topology::random_ids(node_count, rng);
    mobility::RandomDirection model(node_count, scenario.speeds,
                                    kWorldMeters, rng.split());

    metrics::ChurnTracker basic_churn, improved_churn, degree_churn;
    std::vector<char> prev_improved;  // incumbency input across windows
    const auto windows =
        static_cast<std::size_t>(kDurationSeconds / kWindowSeconds);
    for (std::size_t window = 0; window <= windows; ++window) {
      const auto g = topology::unit_disk_graph(points, radius);

      const auto basic = core::cluster_density(g, ids, {});
      basic_churn.observe(
          std::span<const char>(basic.is_head.data(), basic.is_head.size()));

      core::ClusterOptions improved_opt;
      improved_opt.incumbency = true;
      improved_opt.fusion = true;
      const auto improved = core::cluster_density(
          g, ids, improved_opt, {},
          std::span<const char>(prev_improved.data(), prev_improved.size()));
      improved_churn.observe(std::span<const char>(improved.is_head.data(),
                                                   improved.is_head.size()));
      prev_improved = improved.is_head;

      const auto degree = cluster::cluster_highest_degree(g, ids);
      degree_churn.observe(std::span<const char>(degree.is_head.data(),
                                                 degree.is_head.size()));

      model.step(points, kWindowSeconds);
    }
    out.basic.add(basic_churn.ratios().mean());
    out.improved.add(improved_churn.ratios().mean());
    out.degree.add(degree_churn.ratios().mean());
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t runs = util::bench_runs(5);
  bench::print_header(
      "Mobility — % of cluster-heads re-elected per 2 s window (15 min)",
      "pedestrians 0-1.6 m/s: 82% improved / 78% basic; cars 0-10 m/s: "
      "31% improved / 25% basic",
      runs);

  const Scenario scenarios[] = {
      {"pedestrian 0-1.6 m/s", {0.0, 1.6}, 82.0, 78.0},
      {"vehicular 0-10 m/s", {0.0, 10.0}, 31.0, 25.0},
  };
  const double radius = 0.08;  // paper sweeps 0.05-0.1; mid-range here
  const std::size_t node_count = 1000;

  util::Rng root(util::bench_seed());
  util::Table table("Head re-election percentage (mean over runs and "
                    "windows; R=" +
                    util::Table::num(radius, 2) + ", n=1000, 1 km^2 world)");
  table.header({"speed range", "improved (paper)", "improved", "basic (paper)",
                "basic", "degree metric"});

  bool shape_ok = true;
  double prev_improved = 200.0;
  for (const auto& scenario : scenarios) {
    const auto ratios =
        run_scenario(scenario, radius, node_count, runs, root);
    const double improved_pct = ratios.improved.mean() * 100.0;
    const double basic_pct = ratios.basic.mean() * 100.0;
    const double degree_pct = ratios.degree.mean() * 100.0;
    table.row({scenario.label, util::Table::num(scenario.paper_improved, 0),
               util::Table::num(improved_pct, 1),
               util::Table::num(scenario.paper_basic, 0),
               util::Table::num(basic_pct, 1),
               util::Table::num(degree_pct, 1)});
    // Shape: improved >= basic; faster is worse.
    if (improved_pct < basic_pct) shape_ok = false;
    if (improved_pct >= prev_improved) shape_ok = false;
    prev_improved = improved_pct;
  }
  table.note("shape targets: improved rules beat basic at both speeds; "
             "vehicular speeds are far less stable than pedestrian");
  bench::print(table);

  std::printf("Mobility stability shape reproduced: %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
