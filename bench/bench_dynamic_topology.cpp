// Dynamic-topology throughput: incremental edge deltas vs rebuilding
// the unit-disk graph from scratch every mobility tick.
//
// The dynamic-topology runtime (topology/incremental.hpp +
// graph/dynamic.hpp) claims that topology *change* is cheap: per tick,
// a skin/Verlet candidate scan plus an in-place CSR patch, instead of
// re-bucketing all n nodes, re-staging per-node edge lists, re-sorting
// and re-packing a whole new Graph. This bench measures both pipelines
// — mobility step + topology maintenance, nothing else — at n ∈ {1k,
// 10k, 100k} for the paper's pedestrian (0–1.6 m/s) and vehicular
// (0–10 m/s) speed ranges, and verifies on every configuration that the
// incremental graph is edge-for-edge identical to the rebuild (exiting
// nonzero on divergence, so the CI smoke doubles as an equivalence
// gate).
//
// Environment:
//   SSMWN_DYNTOPO_MAX_N  cap on n (default 100000; CI smoke uses 1000)
//   SSMWN_SEED           experiment seed
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_support.hpp"
#include "graph/graph.hpp"
#include "mobility/mobility.hpp"
#include "topology/incremental.hpp"

namespace {

using namespace ssmwn;

struct Profile {
  const char* name;
  double speed_max_mps;
};

std::size_t ticks_for(std::size_t n) {
  if (n >= 100000) return 20;
  if (n >= 10000) return 80;
  return 300;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  const auto max_n = static_cast<std::size_t>(
      util::env_int("SSMWN_DYNTOPO_MAX_N", 100000));
  // Mobility tick. Fine-grained on purpose: at n=100k the radio range
  // is ~5.6 m, so 0.1 s (≤16 cm of pedestrian motion) approximates
  // continuous movement; coarser ticks make every pipeline see
  // teleporting nodes.
  const double dt_s = 0.1;
  const double world_m = 1000.0;

  bench::print_header(
      "Dynamic topology — incremental UDG deltas vs rebuild per tick",
      "Per-perturbation topology maintenance for the live re-convergence "
      "runtime (radius set for mean degree ~10 at every n)",
      1);

  util::Rng root(util::bench_seed());
  bench::JsonReport json("dynamic_topology");
  util::Table table(
      "Topology maintenance ticks per second (higher is better)");
  table.header({"profile", "n", "mean deg", "rebuild t/s", "incr t/s",
                "speedup", "cand rebuilds", "skin"});

  const std::size_t sizes[] = {1000, 10000, 100000};
  const Profile profiles[] = {{"pedestrian", 1.6}, {"vehicular", 10.0}};
  bool equivalent = true;

  for (const std::size_t n : sizes) {
    if (n > max_n) continue;
    // Density held constant across n: mean degree ≈ 10.
    const double radius =
        std::sqrt(10.0 / (3.14159265358979 * static_cast<double>(n)));
    const std::size_t ticks = ticks_for(n);

    for (const Profile& profile : profiles) {
      util::Rng rng = root.split();
      const auto points0 = topology::uniform_points(n, rng);
      const util::Rng mover_rng = rng.split();
      const mobility::SpeedRange speeds{0.0, profile.speed_max_mps};

      // Rebuild pipeline: mobility step + full unit_disk_graph.
      double rebuild_tps = 0.0;
      {
        auto points = points0;
        mobility::RandomDirection mover(n, speeds, world_m, mover_rng);
        graph::Graph g = topology::unit_disk_graph(points, radius);
        for (int w = 0; w < 8; ++w) {  // warm-up, same for both pipelines
          mover.step(points, dt_s);
          g = topology::unit_disk_graph(points, radius);
        }
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t t = 0; t < ticks; ++t) {
          mover.step(points, dt_s);
          g = topology::unit_disk_graph(points, radius);
        }
        rebuild_tps = static_cast<double>(ticks) / seconds_since(start);
      }

      // Incremental pipeline: mobility step + delta scan + CSR patch.
      double incr_tps = 0.0;
      std::uint64_t cand_rebuilds = 0;
      double skin = 0.0;
      double mean_degree = 0.0;
      {
        auto points = points0;
        mobility::RandomDirection mover(n, speeds, world_m, mover_rng);
        topology::LiveTopology topo(points, radius);
        for (int w = 0; w < 8; ++w) {  // warm-up: adaptive skin settles
          mover.step(points, dt_s);
          topo.update(points);
        }
        const std::uint64_t rebuilds_before = topo.index().rebuilds();
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t t = 0; t < ticks; ++t) {
          mover.step(points, dt_s);
          topo.update(points);
        }
        incr_tps = static_cast<double>(ticks) / seconds_since(start);
        cand_rebuilds = topo.index().rebuilds() - rebuilds_before;
        skin = topo.index().skin_fraction();
        mean_degree = 2.0 *
                      static_cast<double>(topo.graph().edge_count()) /
                      static_cast<double>(n);

        // Equivalence gate: after the timed run, the delta-applied graph
        // must equal a fresh rebuild of the final positions.
        const graph::Graph reference =
            topology::unit_disk_graph(points, radius);
        if (topo.graph().edges() != reference.edges()) {
          std::printf("FAIL: incremental graph diverged from rebuild at "
                      "n=%zu %s\n",
                      n, profile.name);
          equivalent = false;
        }
      }

      const double speedup = incr_tps / rebuild_tps;
      table.row({profile.name,
                 util::Table::integer(static_cast<long long>(n)),
                 util::Table::num(mean_degree, 1),
                 util::Table::num(rebuild_tps, 1),
                 util::Table::num(incr_tps, 1),
                 util::Table::num(speedup, 2) + "x",
                 util::Table::integer(static_cast<long long>(cand_rebuilds)),
                 util::Table::num(skin, 2)});
      json.add(profile.name, n, 1, "rebuild_ticks_per_s", rebuild_tps);
      json.add(profile.name, n, 1, "incremental_ticks_per_s", incr_tps);
      json.add(profile.name, n, 1, "speedup", speedup);
    }
  }

  table.note("both pipelines run the identical mobility trajectory; "
             "'cand rebuilds' = candidate-list rebuilds in the timed "
             "window, 'skin' = final adaptive skin fraction");
  table.note("dt = 0.1 s per tick, unit square = 1000 m, radius sized "
             "for mean degree ~10");
  bench::print(table);
  json.write();
  if (!equivalent) return 1;
  return 0;
}
