// Kernel-level micro-benchmarks for the protocol's hot paths: the
// density computation, the branchless intersection kernels under the
// balanced and skewed shapes the density rule produces, the SoA compare
// scans the differential harness runs every step, and the per-step cost
// of incremental density maintenance against the full-recompute oracle.
// Self-contained timing (no external benchmark framework); emits
// BENCH_micro.json via bench_support::JsonReport so the numbers join
// the tracked baseline trajectory in bench/baselines/.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/density.hpp"
#include "core/protocol.hpp"
#include "core/rank.hpp"
#include "core/soa_state.hpp"
#include "sim/network.hpp"
#include "util/merge.hpp"
#include "util/rng.hpp"

namespace {

using namespace ssmwn;
using Clock = std::chrono::steady_clock;

/// Calibrated timing: runs `op` in growing batches until the measured
/// window exceeds ~40ms, then reports seconds per call. Deterministic
/// work only — `op` must not depend on how often it runs.
template <typename Op>
double seconds_per_call(Op&& op) {
  std::size_t reps = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) op();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed > 0.04) return elapsed / static_cast<double>(reps);
    reps *= 4;
  }
}

/// Sorted unique ascending keys with pseudo-random gaps.
std::vector<std::uint64_t> sorted_keys(std::size_t n, util::Rng& rng) {
  std::vector<std::uint64_t> keys(n);
  std::uint64_t v = 0;
  for (auto& k : keys) {
    v += 1 + rng.below(16);
    k = v;
  }
  return keys;
}

volatile std::size_t sink;  // keeps the optimizer honest

}  // namespace

int main() {
  bench::print_header(
      "Micro — hot-path kernels",
      "Density computation, branchless intersection kernels (balanced "
      "and skewed), the SoA divergence scans, and a full protocol step "
      "under incremental vs recompute density maintenance",
      1);

  util::Rng root(util::bench_seed());
  bench::JsonReport json("micro");
  util::Table table("Kernel throughput (higher is better)");
  table.header({"kernel", "shape", "rate"});

  // --- intersection kernels -------------------------------------------
  // Balanced (radio-degree lists) and skewed (a short delta against a
  // long cache) — the two shapes intersect_count dispatches between.
  {
    util::Rng rng = root.split();
    struct Shape {
      const char* name;
      std::size_t na, nb;
    };
    const Shape shapes[] = {{"8x8", 8, 8},
                            {"64x64", 64, 64},
                            {"8x1024", 8, 1024}};
    for (const auto& s : shapes) {
      const auto a = sorted_keys(s.na, rng);
      const auto b = sorted_keys(s.nb, rng);
      const double linear = seconds_per_call([&] {
        sink = util::intersect_count_linear(a.data(), a.size(), b.data(),
                                            b.size());
      });
      const double gallop = seconds_per_call([&] {
        sink = util::intersect_count_gallop(a.data(), a.size(), b.data(),
                                            b.size());
      });
      const double elems =
          static_cast<double>(s.na + s.nb);
      table.row({"intersect_linear", s.name,
                 util::Table::num(elems / linear / 1e6, 1) + " Melem/s"});
      table.row({"intersect_gallop", s.name,
                 util::Table::num(elems / gallop / 1e6, 1) + " Melem/s"});
      json.add(std::string("intersect/linear/") + s.name, s.na + s.nb, 1,
               "elem/s", elems / linear);
      json.add(std::string("intersect/gallop/") + s.name, s.na + s.nb, 1,
               "elem/s", elems / gallop);
    }
  }

  // --- first_mismatch_index -------------------------------------------
  // The block-scan primitive under the SoA column compares: an all-equal
  // prefix at memory bandwidth, divergence in the last block.
  {
    util::Rng rng = root.split();
    const std::size_t n = 1 << 20;
    auto a = sorted_keys(n, rng);
    auto b = a;
    b[n - 3] ^= 1;
    const double t = seconds_per_call(
        [&] { sink = util::first_mismatch_index(a.data(), b.data(), n); });
    table.row({"first_mismatch", "1M u64",
               util::Table::num(static_cast<double>(n) / t / 1e9, 2) +
                   " Gelem/s"});
    json.add("mismatch/u64", n, 1, "elem/s", static_cast<double>(n) / t);
  }

  // --- SoA divergence scans -------------------------------------------
  {
    util::Rng rng = root.split();
    const std::size_t n = 100000;
    core::NodeScalars a;
    a.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      a.dag_id[i] = rng();
      a.metric[i] = rng.uniform();
      a.head[i] = static_cast<topology::ProtocolId>(rng() % n);
      a.parent[i] = static_cast<topology::ProtocolId>(rng() % n);
      a.metric_valid[i] = 1;
      a.head_valid[i] = static_cast<std::uint8_t>(rng() % 2);
      a.parent_valid[i] = a.head_valid[i];
    }
    core::NodeScalars b = a;
    b.head[n - 5] ^= 1;
    const double t_first = seconds_per_call(
        [&] { sink = core::first_divergent_row(a, b); });
    const double t_count = seconds_per_call(
        [&] { sink = core::count_divergent_rows(a, b); });
    table.row({"soa_first_divergent", "100k rows",
               util::Table::num(static_cast<double>(n) / t_first / 1e6, 1) +
                   " Mrow/s"});
    table.row({"soa_count_divergent", "100k rows",
               util::Table::num(static_cast<double>(n) / t_count / 1e6, 1) +
                   " Mrow/s"});
    json.add("soa/first_divergent_row", n, 1, "row/s",
             static_cast<double>(n) / t_first);
    json.add("soa/count_divergent_rows", n, 1, "row/s",
             static_cast<double>(n) / t_count);
  }

  // --- rank election: packed keys vs field-by-field scan ---------------
  // The R2 election kernel at cache/neighborhood sizes. The scalar
  // baseline is the original three-field ≺ comparison chain; the packed
  // kernel is the branchless argmax over a prepacked key column — the
  // steady-state shape, where keys are maintained incrementally on
  // cache writes (docs/ARCHITECTURE.md §9).
  {
    // Independent stream: drawing root.split() here would shift every
    // later section's instances and orphan their tracked rate series.
    util::Rng rng(util::bench_seed() ^ 0x72616e6b);  // "rank"
    for (const std::size_t n : {std::size_t{16}, std::size_t{256},
                                std::size_t{4096}}) {
      std::vector<core::NodeRank> ranks(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Coarse metric grid: ties are common, so the deeper fields of
        // the comparison chain actually execute in the scalar scan.
        ranks[i].metric = static_cast<double>(rng.index(64)) / 8.0;
        ranks[i].incumbent = rng.chance(0.1);
        ranks[i].tie_id = rng.below(1 << 20);
        ranks[i].uid = i;
      }
      const core::RankKeyColumn keys = core::pack_rank_column(ranks, true);
      const double scalar = seconds_per_call([&] {
        // Transliterated original comparison chain (incumbency on).
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i) {
          const core::NodeRank& p = ranks[best];
          const core::NodeRank& q = ranks[i];
          bool prec;
          if (p.metric != q.metric) {
            prec = p.metric < q.metric;
          } else if (p.incumbent != q.incumbent) {
            prec = q.incumbent;
          } else if (p.tie_id != q.tie_id) {
            prec = q.tie_id < p.tie_id;
          } else {
            prec = q.uid < p.uid;
          }
          if (prec) best = i;
        }
        sink = best;
      });
      const double packed = seconds_per_call(
          [&] { sink = core::max_rank_key_index(keys); });
      const std::string shape = std::to_string(n);
      table.row({"election_scalar", shape,
                 util::Table::num(static_cast<double>(n) / scalar / 1e6, 1) +
                     " Melem/s"});
      table.row({"election_packed", shape,
                 util::Table::num(static_cast<double>(n) / packed / 1e6, 1) +
                     " Melem/s"});
      json.add("rank/election_scalar/" + shape, n, 1, "elem/s",
               static_cast<double>(n) / scalar);
      json.add("rank/election_packed/" + shape, n, 1, "elem/s",
               static_cast<double>(n) / packed);
    }
  }

  // --- delta frames: encode + sparse patch vs full-row rewrite ---------
  // One sender row in the late-recovery regime: `len` digests, `changed`
  // of them moved since last step. Encode is the engine's per-row
  // extract pass; apply is the receiver's gallop patch; full_copy is
  // what deliver_payload does instead — the cost the delta path avoids
  // once per listener while encode is paid once per sender.
  {
    // Independent stream, same reason as the election section above.
    util::Rng rng(util::bench_seed() ^ 0x64656c7461);  // "delta"
    struct Shape {
      const char* name;
      std::size_t len, changed;
    };
    const Shape shapes[] = {{"8x2", 8, 2}, {"64x8", 64, 8},
                            {"256x16", 256, 16}};
    const auto digest_id = [](const core::NeighborDigest& d) { return d.id; };
    for (const auto& s : shapes) {
      std::vector<core::NeighborDigest> base(s.len);
      std::uint64_t id = 0;
      for (auto& d : base) {
        id += 1 + rng.below(8);
        d.id = id;
        d.dag_id = rng();
        d.metric = rng.uniform();
        d.metric_valid = true;
        d.is_head = rng.chance(0.1);
      }
      auto next = base;
      for (std::size_t k = 0; k < s.changed; ++k) {
        next[(k * s.len) / s.changed].dag_id ^= 0x9e3779b97f4a7c15ULL;
      }
      std::vector<core::NeighborDigest> delta(s.changed);
      const double encode = seconds_per_call([&] {
        std::size_t m = 0;
        for (std::size_t k = 0; k < s.len; ++k) {
          if (!core::digest_bits_equal(base[k], next[k])) delta[m++] = next[k];
        }
        sink = m;
      });
      auto dest = base;
      const double apply = seconds_per_call([&] {
        sink = util::patch_sorted(dest.data(), dest.size(), delta.data(),
                                  delta.size(), digest_id);
      });
      const double full = seconds_per_call([&] {
        std::copy(next.begin(), next.end(), dest.begin());
        sink = dest.size();
      });
      table.row({"delta_encode", s.name,
                 util::Table::num(1.0 / encode / 1e6, 1) + " Mrow/s"});
      table.row({"delta_apply", s.name,
                 util::Table::num(1.0 / apply / 1e6, 1) + " Mrow/s"});
      table.row({"full_copy", s.name,
                 util::Table::num(1.0 / full / 1e6, 1) + " Mrow/s"});
      json.add(std::string("delta/encode/") + s.name, s.len, 1, "row/s",
               1.0 / encode);
      json.add(std::string("delta/apply/") + s.name, s.len, 1, "row/s",
               1.0 / apply);
      json.add(std::string("delta/full_copy/") + s.name, s.len, 1, "row/s",
               1.0 / full);
    }
  }

  // --- density ---------------------------------------------------------
  {
    util::Rng rng = root.split();
    const auto inst = bench::poisson_instance(
        4000.0, std::sqrt(8.0 / (3.14159 * 4000.0)), rng);
    const std::size_t nodes = inst.graph.node_count();
    const double t = seconds_per_call([&] {
      const auto d = core::compute_densities(inst.graph);
      sink = d.size();
    });
    table.row({"compute_densities", "poisson 4k deg8",
               util::Table::num(static_cast<double>(nodes) / t / 1e6, 2) +
                   " Mnode/s"});
    json.add("density/compute", nodes, 1, "node/s",
             static_cast<double>(nodes) / t);
  }

  // --- protocol step: incremental vs recompute ------------------------
  // The tentpole's cost model in one number pair: identical worlds, one
  // protocol maintaining e(N_p) by delta, one recomputing per R1 firing.
  {
    const util::Rng step_rng = root.split();
    for (const auto maintenance : {core::DensityMaintenance::kIncremental,
                                   core::DensityMaintenance::kRecompute}) {
      util::Rng rng = step_rng;  // identical world + protocol state
      const auto inst = bench::poisson_instance(
          4000.0, std::sqrt(8.0 / (3.14159 * 4000.0)), rng);
      core::ProtocolConfig config;
      config.cluster.use_dag_ids = true;
      config.cluster.fusion = true;
      config.delta_hint =
          std::max<std::uint64_t>(2, inst.graph.max_degree());
      config.density_maintenance = maintenance;
      auto protocol = core::DensityProtocol(inst.ids, config, rng.split());
      sim::PerfectDelivery loss;
      sim::Network network(inst.graph, protocol, loss, 1);
      network.run(3);  // caches full, payloads still churning
      const double t = seconds_per_call([&] { network.step(); });
      const bool inc = maintenance == core::DensityMaintenance::kIncremental;
      table.row({inc ? "step_incremental" : "step_recompute",
                 "poisson 4k deg8",
                 util::Table::num(1.0 / t, 1) + " steps/s"});
      json.add(inc ? "step/incremental" : "step/recompute",
               inst.graph.node_count(), 1, "steps/s", 1.0 / t);
    }
  }

  bench::print(table);
  json.write();
  return 0;
}
