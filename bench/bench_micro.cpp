// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// UDG construction, density computation, the clustering solver, DAG
// renaming, one distributed protocol step, and the SoA compare kernels
// the quiescence machinery runs every step. These quantify the cost
// model behind the bench harness, not any table of the paper.
#include <benchmark/benchmark.h>

#include "core/clustering.hpp"
#include "core/dag_ids.hpp"
#include "core/density.hpp"
#include "core/protocol.hpp"
#include "core/soa_state.hpp"
#include "sim/network.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace {

using namespace ssmwn;

struct Fixture {
  std::vector<topology::Point> points;
  graph::Graph graph;
  topology::IdAssignment ids;
};

Fixture make_fixture(std::size_t n, double radius, std::uint64_t seed) {
  util::Rng rng(seed);
  Fixture f;
  f.points = topology::uniform_points(n, rng);
  f.graph = topology::unit_disk_graph(f.points, radius);
  f.ids = topology::random_ids(n, rng);
  return f;
}

void BM_UnitDiskGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const auto points = topology::uniform_points(n, rng);
  const double radius = std::sqrt(8.0 / (3.14159 * static_cast<double>(n)));
  for (auto _ : state) {
    auto g = topology::unit_disk_graph(points, radius);
    benchmark::DoNotOptimize(g.edge_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnitDiskGraph)->Arg(250)->Arg(1000)->Arg(4000);

void BM_DensityAllNodes(benchmark::State& state) {
  const auto f = make_fixture(static_cast<std::size_t>(state.range(0)), 0.08, 2);
  for (auto _ : state) {
    auto d = core::compute_densities(f.graph);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(BM_DensityAllNodes)->Arg(250)->Arg(1000)->Arg(4000);

void BM_ClusterDensityBasic(benchmark::State& state) {
  const auto f = make_fixture(static_cast<std::size_t>(state.range(0)), 0.08, 3);
  for (auto _ : state) {
    auto r = core::cluster_density(f.graph, f.ids, {});
    benchmark::DoNotOptimize(r.heads.size());
  }
}
BENCHMARK(BM_ClusterDensityBasic)->Arg(250)->Arg(1000);

void BM_ClusterDensityFusion(benchmark::State& state) {
  const auto f = make_fixture(static_cast<std::size_t>(state.range(0)), 0.08, 4);
  core::ClusterOptions opt;
  opt.fusion = true;
  for (auto _ : state) {
    auto r = core::cluster_density(f.graph, f.ids, opt);
    benchmark::DoNotOptimize(r.heads.size());
  }
}
BENCHMARK(BM_ClusterDensityFusion)->Arg(250)->Arg(1000);

void BM_DagRenaming(benchmark::State& state) {
  const auto f = make_fixture(static_cast<std::size_t>(state.range(0)), 0.08, 5);
  util::Rng rng(6);
  for (auto _ : state) {
    auto dag = core::build_dag_ids(f.graph, f.ids, {}, rng);
    benchmark::DoNotOptimize(dag.rounds);
  }
}
BENCHMARK(BM_DagRenaming)->Arg(250)->Arg(1000);

void BM_ProtocolStep(benchmark::State& state) {
  const auto f = make_fixture(static_cast<std::size_t>(state.range(0)), 0.08, 7);
  core::ProtocolConfig config;
  config.delta_hint = f.graph.max_degree();
  core::DensityProtocol protocol(f.ids, config, util::Rng(8));
  sim::PerfectDelivery loss;
  sim::Network network(f.graph, protocol, loss);
  network.run(5);  // warm caches so steps are steady-state
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ProtocolStep)->Arg(100)->Arg(400);

// Two populated scalar populations, bit-identical except for a sparse
// sprinkle of divergent rows near the end — the shape the differential
// harness sees (identical until a stepping bug flips something late).
std::pair<core::NodeScalars, core::NodeScalars> make_populations(
    std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  core::NodeScalars a;
  a.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.dag_id[i] = rng();
    a.metric[i] = rng.uniform();
    a.head[i] = static_cast<topology::ProtocolId>(rng() % n);
    a.parent[i] = static_cast<topology::ProtocolId>(rng() % n);
    a.metric_valid[i] = 1;
    a.head_valid[i] = static_cast<std::uint8_t>(rng() % 2);
    a.parent_valid[i] = a.head_valid[i];
  }
  core::NodeScalars b = a;
  for (std::size_t i = n - n / 64; i < n; i += 7) b.head[i] ^= 1;
  return {std::move(a), std::move(b)};
}

// The per-step cost of the bitwise equivalence check: seven flat
// column scans (vectorizable) instead of one gather-heavy row loop.
void BM_SoaFirstDivergentRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [a, b] = make_populations(n, 2026);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::first_divergent_row(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SoaFirstDivergentRow)->Arg(1000)->Arg(100000);

void BM_SoaCountDivergentRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [a, b] = make_populations(n, 2027);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::count_divergent_rows(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SoaCountDivergentRows)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
