// Table 1 — the paper's worked example (Figure 1).
//
// Reproduces, for the 9 named nodes a..j: neighbor count, link count and
// 1-density, plus the resulting clusterization (heads h and j, with the
// joining chains described in Section 3). Everything here is
// deterministic, so measured values must match the paper exactly.
#include <cstdio>

#include "bench_support.hpp"
#include "core/clustering.hpp"
#include "core/density.hpp"

namespace {

using namespace ssmwn;

constexpr graph::NodeId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, H = 6,
                        I = 7, J = 8;
constexpr const char* kNames = "abcdefhij";

graph::Graph example_graph() {
  return graph::from_edges(9, {{A, D},
                               {A, I},
                               {B, C},
                               {B, D},
                               {B, H},
                               {B, I},
                               {H, I},
                               {E, I},
                               {D, F},
                               {D, J},
                               {F, J}});
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1 — densities and clusters of the worked example (Fig. 1)",
      "nodes a..j; densities 1, 1.25, 1, 1.25, 1, 1.5, 1.5, 1.25, 1.5; "
      "final heads: h and j",
      1);

  const auto g = example_graph();
  // Id_j is the smallest of the tied pair {f, j} (the paper's stated
  // assumption); remaining ids are arbitrary but fixed.
  const topology::IdAssignment ids{10, 11, 12, 13, 14, 15, 16, 17, 1};

  constexpr double kPaperDensity[9] = {1.0, 1.25, 1.0, 1.25, 1.0,
                                       1.5, 1.5,  1.25, 1.5};

  const auto densities = core::compute_densities(g);
  util::Table table("Per-node features (paper value | measured)");
  table.header({"node", "#neighbors", "#links", "paper 1-density",
                "measured 1-density", "match"});
  bool all_match = true;
  for (graph::NodeId p = 0; p < 9; ++p) {
    const auto neighbors = g.neighbors(p);
    const std::size_t links =
        neighbors.size() + core::edges_among(g, neighbors);
    const bool match = densities[p] == kPaperDensity[p];
    all_match = all_match && match;
    table.row({std::string(1, kNames[p]),
               util::Table::integer(static_cast<long long>(neighbors.size())),
               util::Table::integer(static_cast<long long>(links)),
               util::Table::num(kPaperDensity[p]),
               util::Table::num(densities[p]), match ? "yes" : "NO"});
  }
  bench::print(table);

  const auto result = core::cluster_density(g, ids, {});
  util::Table clusters("Resulting clusterization (paper: two clusters, "
                       "heads h and j; F(c)=b, F(b)=h, F(f)=j)");
  clusters.header({"node", "parent F(p)", "head H(p)", "is head"});
  for (graph::NodeId p = 0; p < 9; ++p) {
    clusters.row({std::string(1, kNames[p]),
                  std::string(1, kNames[result.parent[p]]),
                  std::string(1, kNames[result.head_index[p]]),
                  result.is_head[p] ? "yes" : ""});
  }
  clusters.note("paper narrative: c joins b, b joins h; f joins j (density "
                "tie, Id_j smallest); heads: h, j");
  bench::print(clusters);

  const bool heads_ok = result.cluster_count() == 2 && result.is_head[H] &&
                        result.is_head[J];
  const bool chain_ok = result.parent[C] == B && result.parent[B] == H &&
                        result.parent[F] == J;
  std::printf("Densities match Table 1: %s\n", all_match ? "yes" : "NO");
  std::printf("Cluster structure matches Section 3: %s\n",
              (heads_ok && chain_ok) ? "yes" : "NO");
  return (all_match && heads_ok && chain_ok) ? 0 : 1;
}
