// Campaign-engine throughput: runs/sec at 16-256 replications, plus a
// steady-state heap audit.
//
// The campaign runner's contract is that a bag of replications shards
// across the worker pool with per-worker reusable workspaces, so run
// throughput scales with cores and the heap stays *flat* once every
// worker has warmed up: each window's graph/clustering rebuild frees
// exactly what it allocates, and the workspaces keep their capacity
// between runs. This bench measures both — runs/sec per ladder rung,
// and net outstanding allocations (operator new minus operator delete
// calls) across rungs, which must not grow in steady state.
//
// Env knobs: SSMWN_THREADS (runner parallelism, 0 = hardware
// concurrency, the default), SSMWN_SEED, SSMWN_CAMPAIGN_MAX_REPS
// (truncate the ladder, for CI smoke runs).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {

// Counting global allocator: tracks live allocations so net growth
// between ladder rungs is observable. Counts, not bytes — symmetric
// alloc/free pairs cancel either way, and counts need no size probing.
std::atomic<long long> g_live_allocations{0};

void* counted_alloc(std::size_t size) {
  g_live_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_live_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t padded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, padded ? padded : align)) return p;
  throw std::bad_alloc();
}

void counted_free(void* p) {
  if (p) g_live_allocations.fetch_sub(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  counted_free(p);
}

namespace {

using namespace ssmwn;

campaign::CampaignSpec bench_spec(std::size_t replications,
                                  std::uint64_t seed_base) {
  campaign::CampaignSpec spec;
  spec.name = "bench";
  spec.replications = replications;
  spec.seed_base = seed_base;
  spec.n = {150};
  spec.radius = {0.1};
  spec.variant = {campaign::Variant::kImproved};
  spec.mobility = {campaign::MobilityKind::kRandomDirection};
  spec.speed_max = {10.0};
  spec.steps = {10};
  return spec;
}

}  // namespace

int main() {
  const auto threads =
      static_cast<unsigned>(util::env_int("SSMWN_THREADS", 0));
  const auto max_reps = static_cast<std::size_t>(
      util::env_int("SSMWN_CAMPAIGN_MAX_REPS", 256));
  const std::uint64_t seed = util::bench_seed();

  campaign::CampaignRunner runner(threads);
  std::printf("Campaign throughput (n=150, 10 windows/run, improved "
              "variant, %u thread(s))\n\n",
              runner.thread_count());

  util::Table table("runs/sec by replication count");
  table.header({"replications", "runs", "wall ms", "runs/sec",
                "net new-delete delta"});

  // Warm-up rung: lets the workspaces, pools, and allocator caches reach
  // steady state before anything is measured.
  (void)runner.run(campaign::expand(bench_spec(8, seed)));

  // The default ladder, truncated by the cap; a cap under 16 still
  // measures one rung at the cap so the bench never goes vacuous.
  std::vector<std::size_t> ladder;
  for (const std::size_t reps : {std::size_t{16}, std::size_t{64},
                                 std::size_t{256}}) {
    if (reps <= max_reps) ladder.push_back(reps);
  }
  if (ladder.empty()) ladder.push_back(std::max<std::size_t>(1, max_reps));

  bool steady = true;
  ssmwn::bench::JsonReport json("campaign");
  long long previous_live = g_live_allocations.load();
  double last_runs_per_sec = 0.0;
  for (const std::size_t reps : ladder) {
    const auto plan = campaign::expand(bench_spec(reps, seed));
    const auto start = std::chrono::steady_clock::now();
    const auto results = runner.run(plan);
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const long long live = g_live_allocations.load();
    const long long delta = live - previous_live;
    previous_live = live;
    last_runs_per_sec = static_cast<double>(results.size()) / elapsed;
    table.row({std::to_string(reps), std::to_string(results.size()),
               util::Table::num(elapsed * 1000.0, 1),
               util::Table::num(last_runs_per_sec, 1),
               std::to_string(delta)});
    json.add("replications_" + std::to_string(reps), 150,
             runner.thread_count(), "runs_per_s", last_runs_per_sec);
    // Transient plan/result vectors live across the sample points, so a
    // small positive delta is expected; growth *proportional to reps*
    // would mean per-run leakage.
    if (delta > 4096) steady = false;
  }
  table.note("net delta = live allocations gained across the rung; flat "
             "(small, rep-independent) = steady-state heap");
  std::fputs(table.render().c_str(), stdout);

  json.write();
  const bool ok = steady && last_runs_per_sec > 0.0;
  std::printf("\nSteady-state heap flat across rungs: %s\n",
              steady ? "yes" : "NO");
  return ok ? 0 : 1;
}
