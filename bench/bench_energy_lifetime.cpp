// Extension — energy-aware organization (the paper's future-work §6).
//
// Network-lifetime experiment: a static sensor field pays per-window
// maintenance costs, cluster-heads paying a premium. We compare the
// plain density election (same heads pay until they die) against the
// energy-weighted election (density × residual fraction, which rotates
// the head role), reporting time to first death and nodes alive over
// time. This quantifies the conclusion's "energy-efficient organization"
// direction on top of the unchanged self-stabilizing machinery.
#include <cstdio>

#include "bench_support.hpp"
#include "energy/energy.hpp"

namespace {

using namespace ssmwn;

struct LifetimeResult {
  int first_death = 0;
  int half_dead = 0;
  double heads_mean = 0.0;
};

LifetimeResult run_lifetime(const bench::Instance& inst, bool energy_aware,
                            const energy::EnergyConfig& config,
                            int max_windows) {
  LifetimeResult out;
  energy::EnergyStore store(inst.graph.node_count(), config);
  util::RunningStats heads;
  const std::size_t n = inst.graph.node_count();
  std::vector<char> prev;
  for (int window = 0; window < max_windows; ++window) {
    const auto masked = energy::mask_dead(inst.graph, store);
    const auto r = energy_aware
                       ? energy::cluster_energy_aware(masked, inst.ids, store)
                       : core::cluster_density(masked, inst.ids, {});
    heads.add(static_cast<double>(r.cluster_count()));
    store.charge_window(
        std::span<const char>(r.is_head.data(), r.is_head.size()));
    if (out.first_death == 0 && store.alive_count() < n) {
      out.first_death = window + 1;
    }
    if (out.half_dead == 0 && store.alive_count() <= n / 2) {
      out.half_dead = window + 1;
      break;
    }
  }
  if (out.first_death == 0) out.first_death = max_windows;
  if (out.half_dead == 0) out.half_dead = max_windows;
  out.heads_mean = heads.mean();
  return out;
}

}  // namespace

int main() {
  const std::size_t runs = util::bench_runs(8);
  bench::print_header(
      "Extension — network lifetime: plain vs energy-aware election",
      "no paper table; future-work direction quantified (head rotation "
      "postpones first death)",
      runs);

  const energy::EnergyConfig config{
      .capacity = 120.0, .member_cost = 1.0, .head_premium = 4.0};
  const int max_windows = 400;

  util::Rng root(util::bench_seed());
  util::Table table("Maintenance windows survived (capacity 120, member "
                    "cost 1, head premium 4; n~600, R=0.08)");
  table.header({"election", "first death", "half of field dead",
                "mean #heads"});

  util::RunningStats plain_first, aware_first, plain_half, aware_half;
  util::RunningStats plain_heads, aware_heads;
  for (std::size_t run = 0; run < runs; ++run) {
    util::Rng rng = root.split();
    const auto inst = bench::poisson_instance(600.0, 0.08, rng);
    if (inst.graph.node_count() == 0) continue;
    const auto plain = run_lifetime(inst, false, config, max_windows);
    const auto aware = run_lifetime(inst, true, config, max_windows);
    plain_first.add(plain.first_death);
    aware_first.add(aware.first_death);
    plain_half.add(plain.half_dead);
    aware_half.add(aware.half_dead);
    plain_heads.add(plain.heads_mean);
    aware_heads.add(aware.heads_mean);
  }
  table.row({"plain density", util::Table::num(plain_first.mean(), 1),
             util::Table::num(plain_half.mean(), 1),
             util::Table::num(plain_heads.mean(), 1)});
  table.row({"energy-aware", util::Table::num(aware_first.mean(), 1),
             util::Table::num(aware_half.mean(), 1),
             util::Table::num(aware_heads.mean(), 1)});
  table.note("expected: energy-aware election postpones the first death "
             "(head rotation spreads the premium)");
  bench::print(table);

  const bool ok = aware_first.mean() >= plain_first.mean();
  std::printf("Energy-aware election extends time to first death: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
