// Step-engine throughput at scale — the hot path this repo's north star
// rides on.
//
// The paper's step-count results (Table 2: neighbors after 1 step,
// density after 2, head after 3 + tree depth) are interesting exactly
// when a "step" over the whole field is cheap. This bench measures
// steady-state Network::step() throughput for the distributed density
// protocol on grid and random-geometric deployments at n ∈ {1k, 10k,
// 100k}, across three engines:
//
//   * seed    — the pre-arena engine: per-step owning ProtocolFrames,
//               one digest-vector heap allocation per node per step
//   * arena   — flat preallocated frame buffers, zero steady-state
//               allocations, one thread
//   * arena×T — the same, phases fanned out over T worker threads
//
// Steps/sec and speedups vs the seed engine are reported per topology.
//
// Environment:
//   SSMWN_SCALE_MAX_N  cap on n (default 100000; CI smoke uses 1000)
//   SSMWN_THREADS      worker count for the parallel row (default:
//                      hardware concurrency)
//   SSMWN_SEED         experiment seed
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench_support.hpp"
#include "core/protocol.hpp"
#include "sim/network.hpp"

namespace {

using namespace ssmwn;

core::DensityProtocol make_protocol(const bench::Instance& inst,
                                    util::Rng& rng) {
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, inst.graph.max_degree());
  return core::DensityProtocol(inst.ids, config, rng.split());
}

/// Steady-state steps/sec: warm caches first, then time `steps` steps.
double measure(const bench::Instance& inst, util::Rng& rng, bool legacy,
               unsigned threads, std::size_t steps) {
  util::Rng local = rng;  // identical protocol state for every engine
  auto protocol = make_protocol(inst, local);
  sim::PerfectDelivery loss;
  sim::Network network(inst.graph, protocol, loss, threads);
  network.set_legacy_engine(legacy);
  network.run(5);  // warm-up: fill caches, size arena buffers

  const auto start = std::chrono::steady_clock::now();
  network.run(steps);
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(steps) / elapsed;
}

std::size_t steps_for(std::size_t n) {
  if (n >= 100000) return 3;
  if (n >= 10000) return 10;
  return 30;
}

struct TopologyRow {
  const char* name;
  bench::Instance instance;
};

}  // namespace

int main() {
  const auto max_n = static_cast<std::size_t>(
      util::env_int("SSMWN_SCALE_MAX_N", 100000));
  auto threads =
      static_cast<unsigned>(util::env_int("SSMWN_THREADS", 0));
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  bench::print_header(
      "Scale — steady-state step throughput (CSR + frame arena + workers)",
      "Engine for the Table 2 knowledge schedule at production scale; "
      "same protocol state for every engine (determinism asserted by "
      "tests/sim/parallel_step_test)",
      1);

  util::Rng root(util::bench_seed());
  bench::JsonReport json("scale_steps");
  const std::size_t sizes[] = {1000, 10000, 100000};

  util::Table table("Steps per second, steady state (higher is better)");
  table.header({"topology", "n", "mean deg", "seed 1t",
                "arena 1t", "arena " + std::to_string(threads) + "t",
                "arena/seed", "parallel/seed"});

  for (const std::size_t n : sizes) {
    if (n > max_n) continue;
    const std::size_t steps = steps_for(n);
    util::Rng rng = root.split();

    // Grid: the paper's adversarial deployment. Points are spaced 1/side
    // apart in the unit square; radius 1.2/side connects the
    // 4-neighborhood but not the diagonals.
    const auto side = static_cast<std::size_t>(std::llround(std::sqrt(
        static_cast<double>(n))));
    TopologyRow rows[] = {
        {"grid", bench::grid_instance(
                     side, 1.2 / static_cast<double>(side))},
        {"random geometric", bench::poisson_instance(
                                 static_cast<double>(n),
                                 std::sqrt(8.0 / (3.14159 *
                                                  static_cast<double>(n))),
                                 rng)},
    };

    for (auto& row : rows) {
      const auto& inst = row.instance;
      const std::size_t nodes = inst.graph.node_count();
      const double mean_degree =
          nodes == 0 ? 0.0
                     : 2.0 * static_cast<double>(inst.graph.edge_count()) /
                           static_cast<double>(nodes);
      const double seed_sps = measure(inst, rng, /*legacy=*/true, 1, steps);
      const double arena_sps = measure(inst, rng, /*legacy=*/false, 1, steps);
      const double par_sps =
          measure(inst, rng, /*legacy=*/false, threads, steps);
      table.row({row.name, util::Table::integer(
                               static_cast<long long>(nodes)),
                 util::Table::num(mean_degree, 1),
                 util::Table::num(seed_sps, 1), util::Table::num(arena_sps, 1),
                 util::Table::num(par_sps, 1),
                 util::Table::num(arena_sps / seed_sps, 2) + "x",
                 util::Table::num(par_sps / seed_sps, 2) + "x"});
      json.add(std::string(row.name) + "/seed", nodes, 1, "steps_per_s",
               seed_sps);
      json.add(std::string(row.name) + "/arena", nodes, 1, "steps_per_s",
               arena_sps);
      json.add(std::string(row.name) + "/parallel", nodes, threads,
               "steps_per_s", par_sps);
    }
  }
  table.note("seed = per-step owning frames (pre-arena engine); arena = "
             "flat reusable buffers; xT = arena phases on T threads");
  table.note("all engines step the identical protocol state; steady state "
             "after 5 warm-up steps");
  bench::print(table);
  json.write();
  return 0;
}
