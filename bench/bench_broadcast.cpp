// Section 2's traffic claim, quantified — dissemination cost with and
// without the cluster structure.
//
// "This metric allows to limit the exchanged traffic generated while
//  clusters are re-built and the nodes' tables updated."
//
// For growing deployments we broadcast one message network-wide and
// count radio transmissions under blind flooding (the flat baseline),
// cluster-based dissemination (heads + gateways + tree relays forward),
// and the idealized BFS-tree lower bound.
#include <cstdio>

#include "bench_support.hpp"
#include "routing/broadcast.hpp"

int main() {
  using namespace ssmwn;
  const std::size_t runs = util::bench_runs(10);
  bench::print_header(
      "Broadcast — transmissions to cover the network",
      "Section 2: clusterization limits exchanged traffic (no numeric "
      "table in the paper; claim quantified here)",
      runs);

  util::Rng root(util::bench_seed());
  util::Table table("Mean transmissions for one network-wide broadcast "
                    "(mean degree ~12)");
  table.header({"n", "flooding", "clusterized", "BFS tree (bound)",
                "cluster saving"});

  bool ok = true;
  for (const std::size_t n : {250u, 500u, 1000u, 2000u}) {
    const double radius =
        std::sqrt(12.0 / (3.14159 * static_cast<double>(n)));
    util::RunningStats flood_tx, cluster_tx, tree_tx;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = root.split();
      const auto pts = topology::uniform_points(n, rng);
      const auto g = topology::unit_disk_graph(pts, radius);
      const auto ids = topology::random_ids(n, rng);
      const auto clustering = core::cluster_density(g, ids, {});
      const auto source = static_cast<graph::NodeId>(rng.index(n));
      flood_tx.add(static_cast<double>(
          routing::flood(g, source).transmissions));
      cluster_tx.add(static_cast<double>(
          routing::cluster_broadcast(g, clustering, source).transmissions));
      tree_tx.add(static_cast<double>(
          routing::tree_broadcast(g, source).transmissions));
    }
    const double saving = 1.0 - cluster_tx.mean() / flood_tx.mean();
    table.row({util::Table::integer(static_cast<long long>(n)),
               util::Table::num(flood_tx.mean(), 0),
               util::Table::num(cluster_tx.mean(), 0),
               util::Table::num(tree_tx.mean(), 0),
               util::Table::num(saving * 100.0, 1) + " %"});
    if (cluster_tx.mean() >= flood_tx.mean()) ok = false;
    if (tree_tx.mean() > cluster_tx.mean()) ok = false;
  }
  table.note("expected: clusterized < flooding at every scale, above the "
             "BFS-tree lower bound");
  bench::print(table);

  std::printf("Cluster structure reduces broadcast traffic: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
