// Section 4's headline claim — expected-constant stabilization time.
//
// Lemma 2: stabilization time is proportional to the height of the
// ≺-DAG, which is constant when densities are well-spread (random
// geometry) or when the constant-height DAG renaming is used. Without
// the DAG, adversarial identifiers make the height — and hence the
// stabilization time — grow with the network scale.
//
// We run the distributed protocol from a cold start on line topologies
// of growing size (the purest adversarial case: all interior densities
// equal, ids sequential) and on growing random deployments, and report
// steps until the state stops changing:
//
//   * adversarial ids, no DAG   -> grows linearly with n  (the pathology)
//   * adversarial ids, with DAG -> flat (expected constant)
//   * random geometry (constant intensity), no DAG -> flat
#include <cstdio>

#include "bench_support.hpp"
#include "core/protocol.hpp"
#include "sim/network.hpp"
#include "stabilize/convergence.hpp"

namespace {

using namespace ssmwn;

std::size_t steps_to_quiescence(const graph::Graph& g,
                                const topology::IdAssignment& ids,
                                bool use_dag, util::Rng& rng) {
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = use_dag;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  core::DensityProtocol protocol(ids, config, rng.split());
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);

  auto snapshot = [&] {
    return std::make_pair(protocol.head_values(), protocol.parent_values());
  };
  auto last = snapshot();
  const std::size_t max_steps = 4 * g.node_count() + 200;
  const auto report = stabilize::run_until_stable(
      [&] { network.step(); },
      [&] {
        auto now = snapshot();
        const bool same = now == last;
        last = std::move(now);
        return same;
      },
      /*confirm_steps=*/6, max_steps);
  return report.converged ? report.stabilization_step : max_steps;
}

graph::Graph line(std::size_t n) {
  graph::Graph g(n);
  for (graph::NodeId p = 0; p + 1 < n; ++p) g.add_edge(p, p + 1);
  g.finalize();
  return g;
}

}  // namespace

int main() {
  const std::size_t runs = util::bench_runs(5);
  bench::print_header(
      "Scaling — stabilization steps vs network size",
      "Theorem 1 + Lemma 2: constant expected stabilization with the DAG "
      "(or well-spread densities); linear in n without it under "
      "adversarial ids",
      runs);

  util::Rng root(util::bench_seed());
  const std::size_t sizes[] = {16, 32, 64, 128};

  util::Table table("Steps until the distributed state stops changing "
                    "(cold start, mean over runs)");
  table.header({"n", "line, seq ids, no DAG", "line, seq ids, with DAG",
                "random geometry, no DAG"});
  std::vector<double> pathological, fixed, random_geo;
  for (const std::size_t n : sizes) {
    util::RunningStats no_dag, with_dag, rand_stats;
    const auto g = line(n);
    const auto ids = topology::sequential_ids(n);
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = root.split();
      no_dag.add(static_cast<double>(
          steps_to_quiescence(g, ids, /*use_dag=*/false, rng)));
      with_dag.add(static_cast<double>(
          steps_to_quiescence(g, ids, /*use_dag=*/true, rng)));
      // Random deployment with the same node count at constant density
      // (area scaled so mean degree stays ~8).
      util::Rng rng2 = root.split();
      const double radius = std::sqrt(8.0 / (3.14159 * n));
      const auto pts = topology::uniform_points(n, rng2);
      const auto rg = topology::unit_disk_graph(pts, radius);
      const auto rids = topology::random_ids(n, rng2);
      rand_stats.add(static_cast<double>(
          steps_to_quiescence(rg, rids, /*use_dag=*/false, rng2)));
    }
    table.row({util::Table::integer(static_cast<long long>(n)),
               util::Table::num(no_dag.mean(), 1),
               util::Table::num(with_dag.mean(), 1),
               util::Table::num(rand_stats.mean(), 1)});
    pathological.push_back(no_dag.mean());
    fixed.push_back(with_dag.mean());
    random_geo.push_back(rand_stats.mean());
  }
  table.note("expected: column 2 grows ~linearly; columns 3 and 4 stay flat");
  bench::print(table);

  // Shape: pathological case grows by >= 2x from smallest to largest;
  // the DAG and random columns grow by < 2.5x (flat-ish).
  const bool grows = pathological.back() >= 2.0 * pathological.front();
  const bool dag_flat = fixed.back() < 2.5 * std::max(1.0, fixed.front());
  const bool rand_flat =
      random_geo.back() < 2.5 * std::max(1.0, random_geo.front());
  const bool ok = grows && dag_flat && rand_flat;
  std::printf("Constant-vs-linear stabilization contrast reproduced: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
