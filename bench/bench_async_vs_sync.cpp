// Synchronous stepper vs event-driven engine — throughput and
// convergence cost.
//
// Two execution models now drive the same protocol (see
// src/sim/scheduler.hpp): the lockstep Δ(τ) stepper and the
// asynchronous event engine (per-node jittered broadcast periods,
// per-link delays, randomized daemon). This bench answers two
// questions per deployment size:
//
//   * raw engine speed — steps/sec (sync) and events/sec (async) in
//     steady state;
//   * convergence cost from an adversarial initial state — steps and
//     messages for the sync engine, virtual seconds and messages for
//     the async engine (messages-to-convergence is the paper-relevant
//     cost an asynchronous deployment actually pays).
//
// Environment:
//   SSMWN_ASYNC_MAX_N  cap on n (default 10000; CI smoke uses 1000)
//   SSMWN_SEED         experiment seed
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_support.hpp"
#include "core/protocol.hpp"
#include "sim/async_network.hpp"
#include "sim/network.hpp"
#include "stabilize/convergence.hpp"

namespace {

using namespace ssmwn;

core::DensityProtocol make_protocol(const bench::Instance& inst,
                                    std::uint64_t seed) {
  core::ProtocolConfig config;
  config.delta_hint = std::max<std::uint64_t>(2, inst.graph.max_degree());
  return core::DensityProtocol(inst.ids, config, util::Rng(seed));
}

struct SyncResult {
  double steps_per_sec = 0.0;
  std::size_t steps_to_converge = 0;
  std::uint64_t messages = 0;  // deliveries until convergence
  bool converged = false;
};

SyncResult measure_sync(const bench::Instance& inst,
                        const core::ClusteringResult& oracle,
                        std::uint64_t seed) {
  auto protocol = make_protocol(inst, seed);
  util::Rng chaos(seed ^ 0xC0FFEE);
  protocol.corrupt_all(chaos);
  sim::PerfectDelivery loss;
  sim::Network network(inst.graph, protocol, loss, 1);

  // One sync step delivers every directed edge.
  const std::uint64_t messages_per_step = 2 * inst.graph.edge_count();
  auto legitimate = [&] {
    for (graph::NodeId p = 0; p < inst.graph.node_count(); ++p) {
      const auto& s = protocol.state(p);
      if (!s.head_valid || s.head != oracle.head_id[p]) return false;
    }
    return true;
  };

  const auto start = std::chrono::steady_clock::now();
  const auto report = stabilize::run_until_stable(
      [&] { network.step(); }, legitimate, /*confirm_steps=*/3,
      /*max_steps=*/500);
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  SyncResult out;
  out.converged = report.converged;
  out.steps_to_converge = report.stabilization_step;
  out.messages = messages_per_step * report.stabilization_step;
  out.steps_per_sec =
      static_cast<double>(report.steps_executed) / elapsed;
  return out;
}

struct AsyncResult {
  double events_per_sec = 0.0;
  double converge_vtime_s = 0.0;
  std::uint64_t messages = 0;
  bool converged = false;
};

AsyncResult measure_async(const bench::Instance& inst,
                          const core::ClusteringResult& oracle,
                          std::uint64_t seed) {
  auto protocol = make_protocol(inst, seed);
  util::Rng chaos(seed ^ 0xC0FFEE);
  protocol.corrupt_all(chaos);
  sim::PerfectDelivery loss;
  sim::AsyncConfig config;  // defaults: 1 s period ±10%, 20 ms links
  sim::AsyncNetwork network(inst.graph, protocol, loss, config,
                            util::Rng(seed ^ 0xA51C));

  auto legitimate = [&] {
    for (graph::NodeId p = 0; p < inst.graph.node_count(); ++p) {
      const auto& s = protocol.state(p);
      if (!s.head_valid || s.head != oracle.head_id[p]) return false;
    }
    return true;
  };

  const auto start = std::chrono::steady_clock::now();
  const auto report = stabilize::run_until_stable_virtual(
      [&] {
        network.run_for(config.period_s);
        return network.now_seconds();
      },
      [&] { return network.messages_delivered(); }, legitimate,
      /*confirm_s=*/3.0 * config.period_s, /*max_time_s=*/500.0);
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  AsyncResult out;
  out.converged = report.converged;
  out.converge_vtime_s = report.stabilization_time_s;
  out.messages = report.messages_to_converge;
  out.events_per_sec =
      static_cast<double>(network.events_processed()) / elapsed;
  return out;
}

}  // namespace

int main() {
  const auto max_n =
      static_cast<std::size_t>(util::env_int("SSMWN_ASYNC_MAX_N", 10000));

  bench::print_header(
      "Async vs sync — engine throughput and convergence cost",
      "Self-stabilization under the asynchronous regime the theorem is "
      "stated for (PAPER.md §4); sync numbers give the lockstep baseline",
      1);

  util::Rng root(util::bench_seed());
  bench::JsonReport json("async_vs_sync");
  const std::size_t sizes[] = {1000, 10000};

  util::Table table(
      "Convergence from corrupt_all, basic variant, tau = 1 "
      "(async: randomized daemon, defaults)");
  table.header({"n", "mean deg", "sync steps/s", "async events/s",
                "sync conv steps", "sync msgs", "async conv t(s)",
                "async msgs"});

  for (const std::size_t n : sizes) {
    if (n > max_n) continue;
    util::Rng rng = root.split();
    const auto inst = bench::poisson_instance(
        static_cast<double>(n),
        std::sqrt(8.0 / (3.14159 * static_cast<double>(n))), rng);
    const auto oracle = core::cluster_density(inst.graph, inst.ids, {});
    const std::uint64_t seed = rng();

    const auto sync = measure_sync(inst, oracle, seed);
    const auto async = measure_async(inst, oracle, seed);

    table.row({util::Table::integer(
                   static_cast<long long>(inst.graph.node_count())),
               util::Table::num(2.0 *
                                    static_cast<double>(inst.graph.edge_count()) /
                                    static_cast<double>(inst.graph.node_count()),
                                1),
               util::Table::num(sync.steps_per_sec, 1),
               util::Table::num(async.events_per_sec, 0),
               sync.converged
                   ? util::Table::integer(
                         static_cast<long long>(sync.steps_to_converge))
                   : std::string("n/a"),
               util::Table::integer(static_cast<long long>(sync.messages)),
               async.converged ? util::Table::num(async.converge_vtime_s, 1)
                               : std::string("n/a"),
               util::Table::integer(static_cast<long long>(async.messages))});
    json.add("sync", n, 1, "steps_per_s", sync.steps_per_sec);
    json.add("async", n, 1, "events_per_s", async.events_per_sec);
    json.add("async", n, 1, "messages_to_convergence",
             static_cast<double>(async.messages));
    if (!sync.converged || !async.converged) {
      std::printf("WARNING: n=%zu did not converge (sync=%d async=%d)\n", n,
                  sync.converged, async.converged);
    }
  }
  table.note("sync msgs = deliveries until convergence (2|E| per step); "
             "async msgs = event-counted deliveries until the final "
             "legitimate run began");
  table.note("async defaults: period 1 s ±10%, link delay 20 ms ±50%, "
             "randomized daemon");
  bench::print(table);
  json.write();
  return 0;
}
