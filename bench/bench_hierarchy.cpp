// Extension — hierarchical clustering (the paper's future-work §6).
//
// Measures how the multi-level hierarchy collapses the network: heads
// per level, overlay size, and the total address-hierarchy depth, across
// the paper's transmission ranges. The motivation from the paper's
// introduction is hierarchical routing: each extra level divides the
// routing state again.
#include <cstdio>

#include "bench_support.hpp"
#include "core/hierarchy.hpp"

int main() {
  using namespace ssmwn;
  const std::size_t runs = util::bench_runs(10);
  bench::print_header(
      "Extension — multi-level density hierarchy (Poisson(1000))",
      "no paper table; future-work direction quantified (heads per level)",
      runs);

  util::Rng root(util::bench_seed());
  util::Table table("Cluster-heads per hierarchy level (mean over runs)");
  table.header({"R", "level 0 (= Table 4)", "level 1", "level 2", "depth"});

  bool ok = true;
  for (const double radius : {0.05, 0.08, 0.1}) {
    util::RunningStats level0, level1, level2, depth;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = root.split();
      const auto inst = bench::poisson_instance(1000.0, radius, rng);
      if (inst.graph.node_count() == 0) continue;
      const auto h = core::build_hierarchy(inst.graph, inst.ids, {}, 3);
      depth.add(static_cast<double>(h.depth()));
      const auto heads_at = [&](std::size_t k) {
        return k < h.depth()
                   ? static_cast<double>(h.levels[k].clustering.heads.size())
                   : 0.0;
      };
      level0.add(heads_at(0));
      level1.add(heads_at(1));
      level2.add(heads_at(2));
    }
    table.row({util::Table::num(radius, 2), util::Table::num(level0.mean(), 1),
               util::Table::num(level1.mean(), 1),
               util::Table::num(level2.mean(), 1),
               util::Table::num(depth.mean(), 1)});
    if (level1.mean() > level0.mean()) ok = false;
  }
  table.note("expected: each level shrinks the head population "
             "(level-0 column should track Table 4's no-DAG counts)");
  bench::print(table);

  std::printf("Hierarchy collapses the head population per level: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
