// Table 5 — cluster characteristics on the adversarial grid.
//
// Paper setup: nodes on a grid, identifiers increasing left to right and
// bottom to top. All interior nodes have the same density, so every
// election falls to the identifier tie-break — and without the DAG the
// whole network collapses into ONE cluster whose clusterization tree is
// network-diameter deep. With locally-unique DAG names the collapse
// disappears. Paper values:
//
//                      R=0.05          R=0.08          R=0.1
//                    DAG   noDAG     DAG   noDAG     DAG   noDAG
//   # clusters       52.8   1.0      29.3   1.0      18.5   1.0
//   eccentricity      3.4  29.1       4.1  19.1       3.6   6.5
//   tree length       3.7  83.4       4.7 100.5       4.5  32.1
#include <cstdio>

#include "bench_support.hpp"

namespace {

using namespace ssmwn;

struct PaperRow {
  double radius;
  double clusters_dag, clusters_plain;
  double ecc_dag, ecc_plain;
  double tree_dag, tree_plain;
};

constexpr PaperRow kPaper[] = {
    {0.05, 52.8, 1.0, 3.4, 29.1, 3.7, 83.4},
    {0.08, 29.3, 1.0, 4.1, 19.1, 4.7, 100.5},
    {0.10, 18.5, 1.0, 3.6, 6.5, 4.5, 32.1},
};

}  // namespace

int main() {
  const std::size_t runs = util::bench_runs(20);
  bench::print_header(
      "Table 5 — clusters characteristics on a grid (adversarial ids)",
      "without DAG: single network-wide cluster with a huge tree; with "
      "DAG: dozens of compact clusters",
      runs);

  const std::size_t side = topology::grid_side_for(1000);
  util::Rng root(util::bench_seed());

  util::Table table("Measured vs paper (grid " + std::to_string(side) + "x" +
                    std::to_string(side) + ", sequential ids)");
  table.header({"R", "variant", "#clusters (paper)", "#clusters",
                "ecc (paper)", "ecc", "tree (paper)", "tree"});

  bool shape_ok = true;
  for (const auto& row : kPaper) {
    const auto inst = bench::grid_instance(side, row.radius);

    // Without the DAG the configuration is deterministic: one run.
    bench::AveragedStats no_dag;
    {
      util::Rng rng = root.split();
      bench::accumulate_run(inst, {}, rng, no_dag);
    }
    // With the DAG, randomness comes from the renaming.
    bench::AveragedStats with_dag;
    core::ClusterOptions dag_opt;
    dag_opt.use_dag_ids = true;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = root.split();
      bench::accumulate_run(inst, dag_opt, rng, with_dag);
    }

    table.row({util::Table::num(row.radius, 2), "with DAG",
               util::Table::num(row.clusters_dag, 1),
               util::Table::num(with_dag.clusters.mean(), 1),
               util::Table::num(row.ecc_dag, 1),
               util::Table::num(with_dag.eccentricity.mean(), 1),
               util::Table::num(row.tree_dag, 1),
               util::Table::num(with_dag.tree_depth.mean(), 1)});
    table.row({"", "no DAG", util::Table::num(row.clusters_plain, 1),
               util::Table::num(no_dag.clusters.mean(), 1),
               util::Table::num(row.ecc_plain, 1),
               util::Table::num(no_dag.eccentricity.mean(), 1),
               util::Table::num(row.tree_plain, 1),
               util::Table::num(no_dag.tree_depth.mean(), 1)});

    // Shape checks: exactly 1 cluster without the DAG, with a
    // network-scale tree (depth comparable to the grid side — the paper's
    // absolute "tree length" values depend on its unstated grid layout;
    // see EXPERIMENTS.md); dozens of shallow clusters with the DAG.
    if (no_dag.clusters.mean() != 1.0) shape_ok = false;
    if (no_dag.tree_depth.mean() < static_cast<double>(side) / 2.0) {
      shape_ok = false;
    }
    if (with_dag.clusters.mean() < 10.0) shape_ok = false;
    if (with_dag.tree_depth.mean() > 10.0) shape_ok = false;
    if (with_dag.tree_depth.mean() >= no_dag.tree_depth.mean()) {
      shape_ok = false;
    }
  }
  table.note("shape targets: no-DAG collapses to 1 cluster with "
             "network-scale tree; DAG restores dozens of compact clusters");
  bench::print(table);

  std::printf("Table 5 shape reproduced: %s\n", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
