// Ablation — tuning the DAG name space |γ| (the trade-off discussed
// after Theorem 1).
//
// "A large value of |γ| decreases the expected convergence time of N1. On
//  the other hand, a small value of |γ| decreases the DAG's height, and
//  thus the expected convergence time of subsequent algorithms."
//
// We sweep |γ| ∈ {δ+1, 2δ, δ², δ³} (the δ⁶ of [11] is shown for scale at
// small δ) and report: renaming rounds, resulting ≺-DAG height, and the
// number of distributed steps until the full protocol stabilizes on the
// adversarial grid — the end-to-end quantity the constant-height DAG is
// for.
#include <cstdio>

#include "bench_support.hpp"
#include "core/protocol.hpp"
#include "sim/network.hpp"
#include "stabilize/convergence.hpp"

namespace {

using namespace ssmwn;

/// Steps for the distributed protocol (with DAG ids enabled, names in
/// [0, name_space)) to reach and hold a stable configuration on `g`.
std::size_t protocol_stabilization_steps(const graph::Graph& g,
                                         const topology::IdAssignment& ids,
                                         std::uint64_t name_space,
                                         util::Rng& rng) {
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.dag_name_space = name_space;
  config.delta_hint = g.max_degree();
  core::DensityProtocol protocol(ids, config, rng.split());
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);

  // Legitimacy: the distributed state stopped changing (head values and
  // DAG names), checked against a snapshot.
  auto snapshot = [&] {
    return std::make_pair(protocol.head_values(), protocol.dag_id_values());
  };
  auto last = snapshot();
  const auto report = stabilize::run_until_stable(
      [&] { network.step(); },
      [&] {
        auto now = snapshot();
        const bool same = now == last;
        last = std::move(now);
        return same;
      },
      /*confirm_steps=*/8, /*max_steps=*/400);
  return report.converged ? report.stabilization_step : 400;
}

}  // namespace

int main() {
  const std::size_t runs = util::bench_runs(10);
  bench::print_header(
      "Ablation — DAG name space |gamma| vs renaming cost, DAG height and "
      "stabilization time",
      "Section 4.1: larger gamma -> faster renaming; smaller gamma -> "
      "lower DAG height -> faster clustering stabilization",
      runs);

  const std::size_t side = 16;  // grid kept small: protocol sim is costly
  const auto inst = bench::grid_instance(side, 0.05 * 32.0 / side);
  const auto delta = static_cast<std::uint64_t>(inst.graph.max_degree());

  struct Choice {
    const char* label;
    std::uint64_t gamma;
  };
  const Choice choices[] = {
      {"delta+1", delta + 1},
      {"2*delta", 2 * delta},
      {"delta^2 (paper)", delta * delta + 1},
      {"delta^3", delta * delta * delta + 1},
  };

  util::Rng root(util::bench_seed());
  util::Table table("Grid " + std::to_string(side) + "x" +
                    std::to_string(side) + ", adversarial ids, delta = " +
                    std::to_string(delta));
  table.header({"|gamma|", "renaming rounds", "DAG height",
                "protocol stabilization steps"});
  std::vector<double> heights;
  std::vector<double> rounds_list;
  for (const auto& choice : choices) {
    util::RunningStats rounds, height, stab;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = root.split();
      core::DagOptions opt;
      opt.name_space = choice.gamma;
      const auto dag = core::build_dag_ids(inst.graph, inst.ids, opt, rng);
      rounds.add(static_cast<double>(dag.rounds));
      height.add(static_cast<double>(core::dag_height(inst.graph, dag.ids)));
      stab.add(static_cast<double>(protocol_stabilization_steps(
          inst.graph, inst.ids, choice.gamma, rng)));
    }
    table.row({choice.label, util::Table::num(rounds.mean()),
               util::Table::num(height.mean()),
               util::Table::num(stab.mean(), 1)});
    heights.push_back(height.mean());
    rounds_list.push_back(rounds.mean());
  }
  table.note("expected: height grows with |gamma|; renaming rounds shrink "
             "(or stay ~2) as |gamma| grows");
  bench::print(table);

  const bool height_monotone = heights.front() <= heights.back();
  const bool rounds_reasonable =
      rounds_list.front() >= rounds_list.back() - 0.5;
  const bool ok = height_monotone && rounds_reasonable;
  std::printf("Gamma trade-off reproduced: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
