// Ablation — the Section 4.3 improvement rules, separately and together.
//
// Incumbency only affects density ties, so its effect shows up under
// churn; fusion reshapes the static structure (fewer clusters, head
// separation >= 3 hops, diameter >= 2). We report static structure on
// random geometry and head survival under mild mobility for each of the
// four rule combinations.
#include <cstdio>

#include "bench_support.hpp"
#include "metrics/stability.hpp"
#include "mobility/mobility.hpp"

namespace {

using namespace ssmwn;

struct Combo {
  const char* label;
  bool incumbency;
  bool fusion;
};

constexpr Combo kCombos[] = {
    {"basic", false, false},
    {"incumbency", true, false},
    {"fusion", false, true},
    {"incumbency+fusion", true, true},
};

}  // namespace

int main() {
  const std::size_t runs = util::bench_runs(8);
  bench::print_header(
      "Ablation — Section 4.3 rules (incumbency, fusion) in isolation",
      "fusion: fewer clusters, head separation >= 3; incumbency: higher "
      "head survival under churn",
      runs);

  util::Rng root(util::bench_seed());
  const double radius = 0.08;
  const std::size_t node_count = 600;

  util::Table table("Static structure (uniform " +
                    std::to_string(node_count) +
                    " nodes, R=" + util::Table::num(radius, 2) +
                    ") and head survival under 0-2 m/s mobility");
  table.header({"rules", "#clusters", "min head sep", "mean cluster size",
                "head survival %"});

  double basic_clusters = 0.0, fusion_clusters = 0.0;
  double basic_survival = 0.0, full_survival = 0.0;
  for (const auto& combo : kCombos) {
    core::ClusterOptions opt;
    opt.incumbency = combo.incumbency;
    opt.fusion = combo.fusion;

    util::RunningStats clusters, separation, size, survival;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = root.split();
      auto points = topology::uniform_points(node_count, rng);
      const auto ids = topology::random_ids(node_count, rng);
      {
        const auto g = topology::unit_disk_graph(points, radius);
        const auto r = core::cluster_density(g, ids, opt);
        const auto stats = metrics::analyze(g, r);
        clusters.add(static_cast<double>(stats.cluster_count));
        if (stats.cluster_count >= 2) {
          separation.add(static_cast<double>(stats.min_head_separation));
        }
        size.add(stats.mean_cluster_size);
      }
      // Mild mobility: 60 windows of 2 s at pedestrian-to-jogging speed.
      mobility::RandomDirection model(node_count, {0.0, 2.0}, 1000.0,
                                      rng.split());
      metrics::ChurnTracker churn;
      std::vector<char> prev;
      for (int window = 0; window < 60; ++window) {
        const auto g = topology::unit_disk_graph(points, radius);
        const auto r = core::cluster_density(
            g, ids, opt, {}, std::span<const char>(prev.data(), prev.size()));
        churn.observe(
            std::span<const char>(r.is_head.data(), r.is_head.size()));
        if (combo.incumbency) prev = r.is_head;
        model.step(points, 2.0);
      }
      survival.add(churn.ratios().mean());
    }
    table.row({combo.label, util::Table::num(clusters.mean(), 1),
               util::Table::num(separation.mean(), 1),
               util::Table::num(size.mean(), 1),
               util::Table::num(survival.mean() * 100.0, 1)});
    if (!combo.incumbency && !combo.fusion) {
      basic_clusters = clusters.mean();
      basic_survival = survival.mean();
    }
    if (!combo.incumbency && combo.fusion) fusion_clusters = clusters.mean();
    if (combo.incumbency && combo.fusion) full_survival = survival.mean();
  }
  table.note("expected: fusion lowers #clusters and pushes min head "
             "separation to >= 3; incumbency+fusion gives the best survival");
  bench::print(table);

  const bool ok =
      fusion_clusters <= basic_clusters && full_survival >= basic_survival;
  std::printf("Rule ablation shape reproduced: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
